//! The evaluation pipeline and its structured report.
//!
//! For every scenario × strategy × register-file-size cell the harness
//! compiles the scenario's threads, drives them on a multi-PU
//! [`Chip`] under `fill_packets` traffic until every thread has
//! processed its packets, and records throughput, per-thread behaviour
//! and a checksum validation: the compiled run's output regions must be
//! byte-identical to a virtual-register reference run of the same
//! scenario. The result serialises to `BENCH_EVAL.json` (schema
//! documented in `EXPERIMENTS.md`) and parses back for CI validation.
//!
//! # Sharding
//!
//! The sweep's cells are independent, so [`run_eval`] shards them over
//! a bounded worker pool ([`EvalConfig::workers`]): workers steal
//! cell indices from a shared atomic counter, compute each cell in
//! isolation (panics stay confined to their cell), and deposit the
//! result in the cell's canonical positional slot. Because the merge
//! is positional — never arrival-ordered — and the allocation engine
//! is deterministic, the assembled report is **byte-identical** to a
//! serial run for the same configuration and seed, at any worker
//! count, with the compile cache on or off.

use crate::cache::{AllocCache, SimCache, SimKey};
use crate::json::Json;
use crate::pool;
use crate::scenario::{scenarios, Scenario};
use crate::strategy::{all_strategies, CompileCtx, CompiledPu, PuLadderTrail, Strategy};
use regbal_ir::{Func, MemSpace};
use regbal_sim::{Chip, RunReport, SanitizerConfig, SimConfig};
use regbal_workloads::Workload;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Configuration of one evaluation run.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Packets each thread processes (= main-loop iterations).
    pub packets: u32,
    /// Register-file sizes to sweep.
    pub nreg_sweep: Vec<usize>,
    /// Chip interleaving slice in cycles (cross-PU memory visibility).
    pub granularity: u64,
    /// Per-PU cycle budget; a run that exceeds it is reported as a
    /// timeout, not a hang.
    pub cycle_budget: u64,
    /// Seed for the packet generator (per-slot seeds derive from it).
    pub seed: u64,
    /// Arm the register-clobber sanitizer on every measured run. Off by
    /// default: instrumented runs are for correctness sweeps, not for
    /// the throughput numbers.
    pub sanitize: bool,
    /// Worker threads sharding the sweep's cells. `1` (or `0`) runs the
    /// plain serial loop in the calling thread; any count produces a
    /// byte-identical report.
    pub workers: usize,
    /// Record wall-clock timing: per-cell `elapsed_ms` and a run-level
    /// `timing` member in the JSON document. Timing members are the
    /// one non-deterministic part of the report, so configurations
    /// used for byte-equality checks keep this off.
    pub timing: bool,
    /// Share work across cells: allocation verdicts between strategies
    /// whose searches overlap (balanced / balanced-spill / ladder on
    /// the same PU — one whole-sweep engine descent answers every
    /// `Nreg` at once), and chip runs between cells whose compiled
    /// binaries are identical. Behaviour-preserving: engine and
    /// simulator are deterministic, so cached reports are
    /// byte-identical to uncached ones.
    pub cache: bool,
}

/// The machine's available parallelism, `1` when it cannot be probed.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

impl EvalConfig {
    /// The full study: the paper's sweep from 8 to 32 registers per
    /// thread (`Nreg` 32 → 128), sharded over the machine's cores with
    /// wall-clock timing recorded.
    pub fn full() -> EvalConfig {
        EvalConfig {
            packets: 64,
            nreg_sweep: vec![32, 48, 64, 96, 128],
            granularity: 64,
            cycle_budget: 40_000_000,
            seed: 0xE7A1,
            sanitize: false,
            workers: default_workers(),
            timing: true,
            cache: true,
        }
    }

    /// A fast configuration for CI: the tight end (48: the fixed
    /// partition spills, balancing fits) and the paper's 128. Timing is
    /// off so smoke reports are byte-stable across runs and worker
    /// counts (CI compares them with `cmp`).
    pub fn smoke() -> EvalConfig {
        EvalConfig {
            packets: 12,
            nreg_sweep: vec![48, 128],
            timing: false,
            ..EvalConfig::full()
        }
    }
}

/// Why a cell has no measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellStatus {
    /// Compiled, ran to completion, output compared.
    Ok,
    /// The strategy could not produce code at this file size.
    Infeasible(String),
    /// The compiled code did not finish within the cycle budget.
    Timeout,
    /// Compilation or simulation panicked (or the reference run failed);
    /// the sweep continues and the cell records the failure instead of
    /// aborting the whole evaluation.
    Error(String),
}

/// Per-thread record of one measured cell.
#[derive(Debug, Clone)]
pub struct ThreadReport {
    /// Kernel name.
    pub kernel: String,
    /// Processing unit the thread ran on.
    pub pu: usize,
    /// Private registers.
    pub pr: usize,
    /// Shared registers.
    pub sr: usize,
    /// Split moves inserted.
    pub moves: usize,
    /// Ranges spilled.
    pub spills: usize,
    /// Main-loop iterations completed.
    pub iterations: u64,
    /// Context switches taken.
    pub ctx_switches: u64,
    /// Fraction of the run the thread held its PU.
    pub occupancy: f64,
    /// Cycles per iteration (`∞` encodes as `null`).
    pub cycles_per_iteration: f64,
}

/// One scenario × strategy × `Nreg` measurement.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Strategy name.
    pub strategy: String,
    /// Register-file size per PU.
    pub nreg: usize,
    /// Outcome.
    pub status: CellStatus,
    /// Completed iterations per thousand cycles, summed over threads
    /// (the run's packet throughput).
    pub throughput_ipkc: f64,
    /// Wall-clock cycles of the slowest PU.
    pub cycles: u64,
    /// Whether the output regions matched the reference run exactly.
    pub checksum_ok: bool,
    /// Register-safety violations observed (must be 0).
    pub violations: usize,
    /// Whether the run was sanitizer-instrumented.
    pub sanitized: bool,
    /// Clobber-class sanitizer reports (shared-register clobbers and
    /// foreign private-bank writes; must be 0). Only meaningful when
    /// [`CellReport::sanitized`].
    pub sanitizer_violations: usize,
    /// Warning-class sanitizer reports (uninitialized-register reads).
    /// Only meaningful when [`CellReport::sanitized`].
    pub sanitizer_warnings: usize,
    /// Physical registers consumed (max over PUs).
    pub registers_used: usize,
    /// Total split moves.
    pub moves: usize,
    /// Total spilled ranges.
    pub spills: usize,
    /// Of [`CellReport::spills`], how many landed in the shared
    /// scratchpad rather than memory (non-zero only for
    /// `balanced-scratch` and `ladder` cells that settled on the
    /// scratch rung).
    pub scratch_spills: usize,
    /// Ladder rungs descended across all PUs (0 for every strategy
    /// except `ladder`, and for `ladder` runs that stayed balanced).
    pub degraded_count: usize,
    /// Per-PU ladder trails `(pu, trail)`, in PU order: the settled
    /// rung, the forced transitions and the budget retries of each
    /// processing unit. Empty for the single-rung strategies.
    pub ladder: Vec<(usize, PuLadderTrail)>,
    /// Wall-clock milliseconds spent compiling and measuring this cell
    /// (`None` unless [`EvalConfig::timing`]).
    pub elapsed_ms: Option<f64>,
    /// Per-thread details (empty unless `status` is [`CellStatus::Ok`]).
    pub threads: Vec<ThreadReport>,
}

/// All cells of one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario identifier.
    pub name: String,
    /// Human description.
    pub description: String,
    /// Whether the paper's headline applies (hungry critical threads).
    pub register_hungry: bool,
    /// Number of PUs.
    pub num_pus: usize,
    /// Kernel names in thread order.
    pub kernels: Vec<String>,
    /// The measurement cells, strategy-major then `Nreg`-ascending.
    pub cells: Vec<CellReport>,
}

impl ScenarioReport {
    /// The cell of `strategy` at `nreg`, if present.
    pub fn cell(&self, strategy: &str, nreg: usize) -> Option<&CellReport> {
        self.cells
            .iter()
            .find(|c| c.strategy == strategy && c.nreg == nreg)
    }
}

/// Wall-clock statistics of one evaluation run (present only when
/// [`EvalConfig::timing`]).
#[derive(Debug, Clone)]
pub struct EvalTiming {
    /// Workers the sweep was sharded over (the requested shard width).
    pub workers: usize,
    /// OS threads actually spawned: `workers` clamped to the machine's
    /// available parallelism — extra threads on a CPU-bound sweep only
    /// add scheduling contention, and the merge is positional, so the
    /// clamp cannot change a single output byte.
    pub threads: usize,
    /// Wall-clock milliseconds of the whole sweep.
    pub wall_ms: f64,
}

/// The whole study.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Packets per thread.
    pub packets: u32,
    /// The swept register-file sizes.
    pub nreg_sweep: Vec<usize>,
    /// Strategy names, in report order.
    pub strategies: Vec<String>,
    /// Per-scenario results.
    pub scenarios: Vec<ScenarioReport>,
    /// Wall-clock statistics (`None` unless [`EvalConfig::timing`]).
    pub timing: Option<EvalTiming>,
}

/// Runs the full evaluation pipeline over the built-in scenario suite.
pub fn run_eval(config: &EvalConfig) -> EvalReport {
    run_eval_on(config, &scenarios())
}

/// Runs the pipeline over an explicit scenario list (the built-in suite
/// is [`scenarios`]).
pub fn run_eval_on(config: &EvalConfig, suite: &[Scenario]) -> EvalReport {
    run_eval_with(config, suite, &all_strategies())
}

/// Per-scenario state shared by the sweep's workers. The reference run
/// is computed lazily, exactly once, by whichever worker first needs
/// the scenario — serial and sharded sweeps therefore run the same
/// reference exactly once each.
struct ScenarioCtx<'a> {
    scenario: &'a Scenario,
    workloads: Vec<Vec<Workload>>,
    reference: OnceLock<Result<Vec<u8>, String>>,
}

/// The scenario's virtual-register reference output, or why there is
/// none. A broken reference poisons every cell of this scenario with
/// an error record; the remaining scenarios still get measured.
fn reference_output(ctx: &ScenarioCtx<'_>, config: &EvalConfig) -> Result<Vec<u8>, String> {
    let funcs: Vec<Vec<Func>> = ctx
        .workloads
        .iter()
        .map(|pu| pu.iter().map(|w| w.func.clone()).collect())
        .collect();
    match catch_unwind(AssertUnwindSafe(|| {
        run_chip(&funcs, &ctx.workloads, config, None, &[])
    })) {
        Ok(Some(run)) => Ok(run.output),
        Ok(None) => Err("reference run did not halt within the cycle budget".to_string()),
        Err(payload) => Err(format!("reference run panicked: {}", panic_message(&*payload))),
    }
}

/// Runs the pipeline over explicit scenarios *and* strategies — the
/// sharded tentpole. Cells are indexed canonically
/// (`(scenario · |strategies| + strategy) · |sweep| + size`); workers
/// claim indices from a shared atomic counter and fill positional
/// slots, so reassembly is in canonical order no matter which worker
/// finished which cell when. With [`EvalConfig::timing`] off the
/// document is byte-identical at any worker count.
pub fn run_eval_with(
    config: &EvalConfig,
    suite: &[Scenario],
    strategies: &[Box<dyn Strategy>],
) -> EvalReport {
    let workers = config.workers.max(1);
    // Extra threads beyond the machine's parallelism cannot speed up a
    // CPU-bound sweep — they only add scheduling contention — and the
    // positional merge makes the output independent of the thread
    // count, so the clamp is free.
    run_eval_threads(config, suite, strategies, workers, workers.min(default_workers()))
}

/// [`run_eval_with`] with an explicit OS-thread count — the tests use
/// this to drive the scoped-thread merge path even on machines whose
/// available parallelism would clamp it away.
fn run_eval_threads(
    config: &EvalConfig,
    suite: &[Scenario],
    strategies: &[Box<dyn Strategy>],
    workers: usize,
    threads: usize,
) -> EvalReport {
    let started = Instant::now();
    let cache = AllocCache::new(config.nreg_sweep.clone());
    let sim_cache: SimCache<ChipRun> = SimCache::default();
    let ctxs: Vec<ScenarioCtx<'_>> = suite
        .iter()
        .map(|s| ScenarioCtx {
            scenario: s,
            workloads: s.workloads(config.packets),
            reference: OnceLock::new(),
        })
        .collect();
    let nstrat = strategies.len();
    let nsizes = config.nreg_sweep.len();
    let total = suite.len() * nstrat * nsizes;

    // One cell, by canonical index. Both the serial and the sharded
    // path run exactly this closure, so they cannot diverge.
    let compute = |idx: usize| -> CellReport {
        let ctx = &ctxs[idx / (nstrat * nsizes)];
        let strategy = strategies[(idx / nsizes) % nstrat].as_ref();
        let nreg = config.nreg_sweep[idx % nsizes];
        let cell_start = config.timing.then(Instant::now);
        let compile_ctx = config.cache.then(|| CompileCtx {
            cache: &cache,
            scenario: idx / (nstrat * nsizes),
        });
        let mut cell = match ctx.reference.get_or_init(|| reference_output(ctx, config)) {
            Ok(output) => run_cell(
                ctx.scenario,
                strategy,
                nreg,
                &ctx.workloads,
                output,
                config,
                compile_ctx.as_ref().map(|c| (c, &sim_cache)),
            ),
            Err(why) => {
                let mut cell = blank_cell(strategy, nreg, config);
                cell.status = CellStatus::Error(why.clone());
                cell
            }
        };
        cell.elapsed_ms = cell_start.map(|t| t.elapsed().as_secs_f64() * 1000.0);
        cell
    };

    // Work stealing over a shared cursor ([`pool::shard`]): cells
    // differ wildly in cost (a timeout burns the whole cycle budget,
    // an infeasible cell returns instantly), so static striping would
    // idle workers, and the positional merge keeps the report
    // byte-identical at any worker count.
    let mut cells = pool::shard(total, threads, compute).into_iter();

    let scenario_reports = ctxs
        .iter()
        .map(|ctx| ScenarioReport {
            name: ctx.scenario.name.to_string(),
            description: ctx.scenario.description.to_string(),
            register_hungry: ctx.scenario.register_hungry,
            num_pus: ctx.scenario.pus.len(),
            kernels: ctx
                .workloads
                .iter()
                .flatten()
                .map(|w| w.kernel.name().to_string())
                .collect(),
            cells: cells.by_ref().take(nstrat * nsizes).collect(),
        })
        .collect();
    EvalReport {
        packets: config.packets,
        nreg_sweep: config.nreg_sweep.clone(),
        strategies: strategies.iter().map(|s| s.name().to_string()).collect(),
        scenarios: scenario_reports,
        timing: config.timing.then(|| EvalTiming {
            workers,
            threads: threads.min(total.max(1)),
            wall_ms: started.elapsed().as_secs_f64() * 1000.0,
        }),
    }
}

/// The string a panic unwound with, for error records.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// A cell skeleton with no measurement yet.
fn blank_cell(strategy: &dyn Strategy, nreg: usize, config: &EvalConfig) -> CellReport {
    CellReport {
        strategy: strategy.name().to_string(),
        nreg,
        status: CellStatus::Ok,
        throughput_ipkc: 0.0,
        cycles: 0,
        checksum_ok: false,
        violations: 0,
        sanitized: config.sanitize,
        sanitizer_violations: 0,
        sanitizer_warnings: 0,
        registers_used: 0,
        moves: 0,
        spills: 0,
        scratch_spills: 0,
        degraded_count: 0,
        ladder: Vec::new(),
        elapsed_ms: None,
        threads: Vec::new(),
    }
}

fn run_cell(
    scenario: &Scenario,
    strategy: &dyn Strategy,
    nreg: usize,
    workloads: &[Vec<Workload>],
    reference_output: &[u8],
    config: &EvalConfig,
    caches: Option<(&CompileCtx<'_>, &SimCache<ChipRun>)>,
) -> CellReport {
    let mut cell = blank_cell(strategy, nreg, config);

    // Compile every PU; a structured failure marks the whole cell
    // infeasible, a panic marks it errored — either way the sweep
    // continues with the next cell.
    let mut compiled: Vec<CompiledPu> = Vec::with_capacity(workloads.len());
    for (pu, pu_workloads) in workloads.iter().enumerate() {
        let funcs: Vec<Func> = pu_workloads.iter().map(|w| w.func.clone()).collect();
        match catch_unwind(AssertUnwindSafe(|| match caches {
            Some((ctx, _)) => strategy.compile_cached(&funcs, nreg, pu, ctx),
            None => strategy.compile(&funcs, nreg, pu),
        })) {
            Ok(Ok(c)) => compiled.push(c),
            Ok(Err(reason)) => {
                cell.status = CellStatus::Infeasible(format!("PU{pu}: {reason}"));
                return cell;
            }
            Err(payload) => {
                cell.status = CellStatus::Error(format!(
                    "PU{pu}: compile panicked: {}",
                    panic_message(&*payload)
                ));
                return cell;
            }
        }
    }
    cell.registers_used = compiled.iter().map(|c| c.registers_used).max().unwrap_or(0);
    cell.moves = compiled.iter().map(CompiledPu::moves).sum();
    cell.spills = compiled.iter().map(CompiledPu::spills).sum();
    cell.scratch_spills = compiled.iter().map(|c| c.scratch_spills).sum();
    cell.degraded_count = compiled.iter().map(|c| c.degraded).sum();
    cell.ladder = compiled
        .iter()
        .enumerate()
        .filter_map(|(pu, c)| c.ladder.clone().map(|trail| (pu, trail)))
        .collect();

    let key = SimKey {
        funcs: compiled.iter().map(|c| c.funcs.clone()).collect(),
        sanitizers: config
            .sanitize
            .then(|| compiled.iter().map(|c| c.sanitizer.clone()).collect()),
        degraded: compiled.iter().map(|c| c.degraded as u64).collect(),
    };
    let chip_run = || {
        run_chip(
            &key.funcs,
            workloads,
            config,
            key.sanitizers.as_deref(),
            &key.degraded,
        )
        .map(Arc::new)
    };
    let run = match catch_unwind(AssertUnwindSafe(|| match caches {
        Some((ctx, sim)) => sim.slot(ctx.scenario, &key).get_or_init(chip_run).clone(),
        None => chip_run(),
    })) {
        Ok(Some(run)) => run,
        Ok(None) => {
            cell.status = CellStatus::Timeout;
            return cell;
        }
        Err(payload) => {
            cell.status =
                CellStatus::Error(format!("run panicked: {}", panic_message(&*payload)));
            return cell;
        }
    };
    cell.cycles = run.cycles;
    cell.throughput_ipkc = run.throughput_ipkc();
    cell.checksum_ok = run.output == reference_output;
    cell.violations = run.violations;
    cell.sanitizer_violations = run.sanitizer_violations;
    cell.sanitizer_warnings = run.sanitizer_warnings;
    cell.threads = scenario
        .pus
        .iter()
        .enumerate()
        .flat_map(|(pu, kernels)| {
            let report = &run.reports[pu];
            let code = &compiled[pu];
            kernels
                .iter()
                .enumerate()
                .map(move |(t, &kernel)| ThreadReport {
                    kernel: kernel.name().to_string(),
                    pu,
                    pr: code.threads[t].pr,
                    sr: code.threads[t].sr,
                    moves: code.threads[t].moves,
                    spills: code.threads[t].spills,
                    iterations: report.threads[t].iterations,
                    ctx_switches: report.threads[t].ctx_switches,
                    occupancy: report.threads[t].busy_cycles as f64
                        / report.cycles.max(1) as f64,
                    cycles_per_iteration: report.threads[t].cycles_per_iteration,
                })
                .collect::<Vec<_>>()
        })
        .collect();
    cell
}

/// A completed chip run: concatenated output regions (thread order) and
/// the digested statistics.
struct ChipRun {
    output: Vec<u8>,
    reports: Vec<RunReport>,
    cycles: u64,
    violations: usize,
    sanitizer_violations: usize,
    sanitizer_warnings: usize,
    iterations: u64,
}

impl ChipRun {
    fn throughput_ipkc(&self) -> f64 {
        self.iterations as f64 * 1000.0 / self.cycles.max(1) as f64
    }
}

/// Runs one function set on a chip with the scenario's PU topology;
/// `None` when a thread fails to halt within the budget. `degraded`
/// holds per-PU ladder-descent counts to stamp into the run reports
/// (empty for reference runs and non-ladder strategies).
fn run_chip(
    pu_funcs: &[Vec<Func>],
    workloads: &[Vec<Workload>],
    config: &EvalConfig,
    sanitizers: Option<&[SanitizerConfig]>,
    degraded: &[u64],
) -> Option<ChipRun> {
    let mut chip = Chip::new(SimConfig::default(), pu_funcs.len());
    if let Some(configs) = sanitizers {
        for (pu, cfg) in configs.iter().enumerate() {
            chip.enable_sanitizer(pu, cfg.clone());
        }
    }
    for (pu, &count) in degraded.iter().enumerate() {
        chip.pu_mut(pu).note_degraded(count);
    }
    for w in workloads.iter().flatten() {
        w.prepare(chip.memory_mut(), config.seed + w.slot as u64);
    }
    for (pu, funcs) in pu_funcs.iter().enumerate() {
        for f in funcs {
            chip.add_thread(pu, f.clone());
        }
    }
    let reports = chip.run(config.cycle_budget, config.granularity);
    if !(0..chip.num_pus()).all(|pu| chip.pu(pu).all_halted()) {
        return None;
    }
    let mut output = Vec::new();
    for w in workloads.iter().flatten() {
        let (addr, len) = w.output_region();
        output.extend(chip.memory().read_bytes(MemSpace::Scratch, addr, len));
    }
    Some(ChipRun {
        output,
        cycles: reports.iter().map(|r| r.cycles).max().unwrap_or(0),
        violations: reports.iter().map(|r| r.violations.len()).sum(),
        sanitizer_violations: reports
            .iter()
            .map(|r| r.sanitizer_violations().count())
            .sum(),
        sanitizer_warnings: reports
            .iter()
            .map(|r| r.sanitizer.iter().filter(|s| !s.is_violation()).count())
            .sum(),
        iterations: reports
            .iter()
            .flat_map(|r| r.threads.iter().map(|t| t.iterations))
            .sum(),
        reports,
    })
}

/// The shared per-thread allocation-summary schema: the same keys are
/// emitted by `regbal alloc --json`, so external tooling reads one
/// format everywhere.
pub fn thread_alloc_json(
    name: &str,
    pr: usize,
    sr: usize,
    moves: usize,
    spills: usize,
) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("pr".into(), Json::uint(pr as u64)),
        ("sr".into(), Json::uint(sr as u64)),
        ("moves".into(), Json::uint(moves as u64)),
        ("spills".into(), Json::uint(spills as u64)),
    ])
}

/// The shared ladder-trail schema: the settled rung, the recorded
/// trail of forced transitions with stable machine-readable reason
/// codes ([`regbal_core::AllocError::code`]), and any same-rung budget
/// retries. The same keys are emitted by `regbal alloc --ladder
/// --json` and by the per-PU `ladder` entries of `BENCH_EVAL.json`.
pub fn ladder_trail_json(trail: &PuLadderTrail) -> Json {
    Json::Obj(vec![
        ("step".into(), Json::str(trail.step.name())),
        (
            "degraded".into(),
            Json::uint(trail.degradations.len() as u64),
        ),
        (
            "degradations".into(),
            Json::Arr(
                trail
                    .degradations
                    .iter()
                    .map(|d| {
                        Json::Obj(vec![
                            ("from".into(), Json::str(d.from.name())),
                            ("to".into(), Json::str(d.to.name())),
                            ("code".into(), Json::str(d.reason.code())),
                            ("reason".into(), Json::str(d.reason.to_string())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "retries".into(),
            Json::Arr(
                trail
                    .retries
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("step".into(), Json::str(r.step.name())),
                            ("cap".into(), Json::uint(r.cap as u64)),
                            ("retry_cap".into(), Json::uint(r.retry_cap as u64)),
                            ("recovered".into(), Json::Bool(r.recovered)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

impl EvalReport {
    /// Serialises the report (the `BENCH_EVAL.json` document).
    pub fn to_json(&self) -> Json {
        let mut doc = Json::Obj(vec![
            ("schema".into(), Json::str("regbal-eval/1")),
            ("packets".into(), Json::uint(self.packets as u64)),
            (
                "nreg_sweep".into(),
                Json::Arr(self.nreg_sweep.iter().map(|&n| Json::uint(n as u64)).collect()),
            ),
            (
                "strategies".into(),
                Json::Arr(self.strategies.iter().map(Json::str).collect()),
            ),
            (
                "scenarios".into(),
                Json::Arr(self.scenarios.iter().map(ScenarioReport::to_json).collect()),
            ),
        ]);
        if let Some(timing) = &self.timing {
            let Json::Obj(members) = &mut doc else {
                unreachable!("the report document is an object");
            };
            members.push((
                "timing".into(),
                Json::Obj(vec![
                    ("workers".into(), Json::uint(timing.workers as u64)),
                    ("threads".into(), Json::uint(timing.threads as u64)),
                    ("wall_ms".into(), Json::float(timing.wall_ms)),
                ]),
            ));
        }
        doc
    }

    /// The serialised document text.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }
}

impl ScenarioReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("description".into(), Json::str(&self.description)),
            ("register_hungry".into(), Json::Bool(self.register_hungry)),
            ("num_pus".into(), Json::uint(self.num_pus as u64)),
            (
                "kernels".into(),
                Json::Arr(self.kernels.iter().map(Json::str).collect()),
            ),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(CellReport::to_json).collect()),
            ),
        ])
    }
}

impl CellReport {
    fn to_json(&self) -> Json {
        let (status, reason) = match &self.status {
            CellStatus::Ok => ("ok", None),
            CellStatus::Infeasible(why) => ("infeasible", Some(why.clone())),
            CellStatus::Timeout => ("timeout", None),
            CellStatus::Error(why) => ("error", Some(why.clone())),
        };
        let mut members = vec![
            ("strategy".into(), Json::str(&self.strategy)),
            ("nreg".into(), Json::uint(self.nreg as u64)),
            ("status".into(), Json::str(status)),
        ];
        if let Some(reason) = reason {
            members.push(("reason".into(), Json::str(reason)));
        }
        if self.status == CellStatus::Ok {
            members.extend([
                (
                    "throughput_ipkc".into(),
                    Json::float(self.throughput_ipkc),
                ),
                ("cycles".into(), Json::uint(self.cycles)),
                ("checksum_ok".into(), Json::Bool(self.checksum_ok)),
                ("violations".into(), Json::uint(self.violations as u64)),
            ]);
            if self.sanitized {
                members.extend([
                    (
                        "sanitizer_violations".into(),
                        Json::uint(self.sanitizer_violations as u64),
                    ),
                    (
                        "sanitizer_warnings".into(),
                        Json::uint(self.sanitizer_warnings as u64),
                    ),
                ]);
            }
            members.extend([
                (
                    "registers_used".into(),
                    Json::uint(self.registers_used as u64),
                ),
                ("moves".into(), Json::uint(self.moves as u64)),
                ("spills".into(), Json::uint(self.spills as u64)),
                (
                    "scratch_spills".into(),
                    Json::uint(self.scratch_spills as u64),
                ),
                (
                    "degraded_count".into(),
                    Json::uint(self.degraded_count as u64),
                ),
            ]);
            if !self.ladder.is_empty() {
                members.push((
                    "ladder".into(),
                    Json::Arr(
                        self.ladder
                            .iter()
                            .map(|(pu, trail)| {
                                let Json::Obj(mut entry) = ladder_trail_json(trail) else {
                                    unreachable!("ladder_trail_json returns an object");
                                };
                                entry.insert(0, ("pu".into(), Json::uint(*pu as u64)));
                                Json::Obj(entry)
                            })
                            .collect(),
                    ),
                ));
            }
            members.push((
                "threads".into(),
                Json::Arr(self.threads.iter().map(ThreadReport::to_json).collect()),
            ));
        }
        if let Some(ms) = self.elapsed_ms {
            members.push(("elapsed_ms".into(), Json::float(ms)));
        }
        Json::Obj(members)
    }
}

impl ThreadReport {
    fn to_json(&self) -> Json {
        let Json::Obj(mut members) =
            thread_alloc_json(&self.kernel, self.pr, self.sr, self.moves, self.spills)
        else {
            unreachable!("thread_alloc_json returns an object");
        };
        members.insert(1, ("pu".into(), Json::uint(self.pu as u64)));
        members.extend([
            ("iterations".into(), Json::uint(self.iterations)),
            ("ctx_switches".into(), Json::uint(self.ctx_switches)),
            ("occupancy".into(), Json::float(self.occupancy)),
            (
                "cycles_per_iteration".into(),
                Json::float(self.cycles_per_iteration),
            ),
        ]);
        Json::Obj(members)
    }
}

/// Validates a parsed `BENCH_EVAL.json` document: schema shape, full
/// scenario × strategy × `Nreg` coverage, all checksums green, no
/// safety violations, a `degraded_count` on every measured cell,
/// no `error` cells (a cell that panicked is recorded in the document
/// but fails validation, with its reason in the message), every
/// scenario × strategy feasible somewhere in the sweep, and the
/// paper's qualitative result — on a register-hungry scenario,
/// `balanced` throughput at the largest file must be at least
/// `fixed-partition`'s.
///
/// Scratchpad accounting is checked on every measured cell that
/// carries it: `scratch_spills` can never exceed `spills`, and only
/// the `balanced-scratch` strategy and the `ladder` (whose scratch
/// rung is the same allocator) may route spills to the scratchpad.
///
/// # Errors
///
/// Returns the first violated property.
pub fn validate_json(doc: &Json) -> Result<String, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema`")?;
    if schema != "regbal-eval/1" {
        return Err(format!("unknown schema `{schema}`"));
    }
    let sweep: Vec<u64> = doc
        .get("nreg_sweep")
        .and_then(Json::as_arr)
        .ok_or("missing `nreg_sweep`")?
        .iter()
        .map(|v| v.as_u64().ok_or("non-numeric nreg"))
        .collect::<Result<_, _>>()?;
    let strategies: Vec<&str> = doc
        .get("strategies")
        .and_then(Json::as_arr)
        .ok_or("missing `strategies`")?
        .iter()
        .map(|v| v.as_str().ok_or("non-string strategy"))
        .collect::<Result<_, _>>()?;
    let scenario_docs = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("missing `scenarios`")?;
    if scenario_docs.len() < 3 {
        return Err(format!("only {} scenarios; need at least 3", scenario_docs.len()));
    }
    if strategies.len() < 3 {
        return Err(format!("only {} strategies; need 3", strategies.len()));
    }

    let mut ok_cells = 0usize;
    let mut hungry_headline = false;
    for sdoc in scenario_docs {
        let name = sdoc.get("name").and_then(Json::as_str).ok_or("scenario without name")?;
        let cells = sdoc
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{name}: missing cells"))?;
        let find = |strategy: &str, nreg: u64| -> Option<&Json> {
            cells.iter().find(|c| {
                c.get("strategy").and_then(Json::as_str) == Some(strategy)
                    && c.get("nreg").and_then(|n| n.as_u64()) == Some(nreg)
            })
        };
        for &strategy in &strategies {
            let mut feasible_somewhere = false;
            for &nreg in &sweep {
                let cell = find(strategy, nreg)
                    .ok_or_else(|| format!("{name}: missing cell {strategy}@{nreg}"))?;
                let status = cell
                    .get("status")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{name}: cell {strategy}@{nreg} without status"))?;
                match status {
                    "ok" => {
                        feasible_somewhere = true;
                        ok_cells += 1;
                        if cell.get("checksum_ok").and_then(Json::as_bool) != Some(true) {
                            return Err(format!("{name}: {strategy}@{nreg} failed checksum"));
                        }
                        if cell.get("violations").and_then(|v| v.as_u64()) != Some(0) {
                            return Err(format!("{name}: {strategy}@{nreg} had violations"));
                        }
                        // Instrumented documents must be clobber-free.
                        if let Some(s) = cell.get("sanitizer_violations") {
                            if s.as_u64() != Some(0) {
                                return Err(format!(
                                    "{name}: {strategy}@{nreg} had sanitizer violations"
                                ));
                            }
                        }
                        let degraded_count = cell
                            .get("degraded_count")
                            .and_then(|v| v.as_u64())
                            .ok_or_else(|| {
                                format!("{name}: {strategy}@{nreg} missing degraded_count")
                            })?;
                        // Scratchpad accounting: a subset of the spill
                        // total, and zero outside the scratch-capable
                        // strategies.
                        if let Some(scratch) =
                            cell.get("scratch_spills").and_then(|v| v.as_u64())
                        {
                            let spills = cell
                                .get("spills")
                                .and_then(|v| v.as_u64())
                                .ok_or_else(|| {
                                    format!("{name}: {strategy}@{nreg} missing spills")
                                })?;
                            if scratch > spills {
                                return Err(format!(
                                    "{name}: {strategy}@{nreg} scratch_spills ({scratch}) \
                                     exceed spills ({spills})"
                                ));
                            }
                            if scratch > 0
                                && strategy != "balanced-scratch"
                                && strategy != "ladder"
                            {
                                return Err(format!(
                                    "{name}: {strategy}@{nreg} routed {scratch} spill(s) \
                                     to the scratchpad without a scratch rung"
                                ));
                            }
                        }
                        // Ladder cells carry the per-PU trail, and its
                        // degradations must add up to the cell total.
                        if strategy == "ladder" {
                            let entries = cell
                                .get("ladder")
                                .and_then(Json::as_arr)
                                .ok_or_else(|| {
                                    format!("{name}: {strategy}@{nreg} missing ladder trail")
                                })?;
                            let mut total = 0u64;
                            for entry in entries {
                                entry.get("pu").and_then(|v| v.as_u64()).ok_or_else(|| {
                                    format!("{name}: {strategy}@{nreg} trail entry without pu")
                                })?;
                                entry.get("step").and_then(Json::as_str).ok_or_else(|| {
                                    format!("{name}: {strategy}@{nreg} trail entry without step")
                                })?;
                                total += entry
                                    .get("degraded")
                                    .and_then(|v| v.as_u64())
                                    .ok_or_else(|| {
                                        format!(
                                            "{name}: {strategy}@{nreg} trail entry without degraded"
                                        )
                                    })?;
                            }
                            if total != degraded_count {
                                return Err(format!(
                                    "{name}: {strategy}@{nreg} trail degradations ({total}) \
                                     disagree with degraded_count ({degraded_count})"
                                ));
                            }
                        }
                    }
                    "infeasible" => {}
                    "error" => {
                        let why = cell
                            .get("reason")
                            .and_then(Json::as_str)
                            .unwrap_or("no reason recorded");
                        return Err(format!("{name}: {strategy}@{nreg} errored: {why}"));
                    }
                    other => return Err(format!("{name}: {strategy}@{nreg} status `{other}`")),
                }
                // Timed documents stamp non-negative wall-clock costs.
                if let Some(ms) = cell.get("elapsed_ms") {
                    let ms = ms.as_f64().ok_or_else(|| {
                        format!("{name}: {strategy}@{nreg} non-numeric elapsed_ms")
                    })?;
                    if !ms.is_finite() || ms < 0.0 {
                        return Err(format!(
                            "{name}: {strategy}@{nreg} invalid elapsed_ms {ms}"
                        ));
                    }
                }
            }
            if !feasible_somewhere {
                return Err(format!("{name}: `{strategy}` never feasible in the sweep"));
            }
        }
        // The paper's qualitative headline at the widest file.
        if sdoc.get("register_hungry").and_then(Json::as_bool) == Some(true) {
            let top = *sweep.iter().max().ok_or("empty sweep")?;
            let tp = |strategy: &str| -> Option<f64> {
                find(strategy, top)?.get("throughput_ipkc")?.as_f64()
            };
            if let (Some(balanced), Some(fixed)) = (tp("balanced"), tp("fixed-partition")) {
                if balanced >= fixed {
                    hungry_headline = true;
                }
            }
        }
    }
    if !hungry_headline {
        return Err(
            "no register-hungry scenario where balanced >= fixed-partition at the largest file"
                .into(),
        );
    }
    if let Some(timing) = doc.get("timing") {
        let workers = timing
            .get("workers")
            .and_then(|v| v.as_u64())
            .ok_or("timing without workers")?;
        if workers == 0 {
            return Err("timing reports zero workers".into());
        }
        let threads = timing
            .get("threads")
            .and_then(|v| v.as_u64())
            .ok_or("timing without threads")?;
        if threads == 0 || threads > workers {
            return Err(format!("invalid thread count {threads} for {workers} workers"));
        }
        let wall = timing
            .get("wall_ms")
            .and_then(Json::as_f64)
            .ok_or("timing without wall_ms")?;
        if !wall.is_finite() || wall < 0.0 {
            return Err(format!("invalid wall_ms {wall}"));
        }
    }
    Ok(format!(
        "{} scenarios x {} strategies x {} sizes: {ok_cells} validated cells, headline holds",
        scenario_docs.len(),
        strategies.len(),
        sweep.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A strategy that dies the way a buggy allocator would.
    struct Panicky;

    impl Strategy for Panicky {
        fn name(&self) -> &'static str {
            "panicky"
        }

        fn compile(&self, _: &[Func], _: usize, _: usize) -> Result<CompiledPu, String> {
            panic!("boom at compile time");
        }
    }

    #[test]
    fn a_panicking_strategy_marks_the_cell_errored() {
        let config = EvalConfig {
            packets: 2,
            nreg_sweep: vec![48],
            ..EvalConfig::smoke()
        };
        let suite = scenarios();
        let scenario = &suite[0];
        let workloads = scenario.workloads(config.packets);
        let cell = run_cell(scenario, &Panicky, 48, &workloads, &[], &config, None);
        let CellStatus::Error(why) = &cell.status else {
            panic!("expected an error cell, got {:?}", cell.status);
        };
        assert!(why.contains("boom"), "reason carries the panic message: {why}");
        // The record serialises with the failure, keeping the document
        // parseable, but validation rejects it with the reason.
        let text = cell.to_json().pretty();
        assert!(text.contains("\"status\": \"error\""));
        assert!(text.contains("boom at compile time"));
    }

    #[test]
    fn a_dead_reference_run_errors_the_scenario_but_not_the_sweep() {
        // A 10-cycle budget kills the virtual-register reference run;
        // every cell of the scenario must carry an error record instead
        // of the harness aborting.
        let config = EvalConfig {
            packets: 2,
            nreg_sweep: vec![48],
            cycle_budget: 10,
            ..EvalConfig::smoke()
        };
        let suite = scenarios();
        let report = run_eval_on(&config, &suite[..3]);
        assert_eq!(report.scenarios.len(), 3);
        for scenario in &report.scenarios {
            assert!(!scenario.cells.is_empty());
            for cell in &scenario.cells {
                assert!(
                    matches!(&cell.status, CellStatus::Error(why) if why.contains("reference")),
                    "expected reference-failure error, got {:?}",
                    cell.status
                );
            }
        }
        // The poisoned document still serialises and parses; validation
        // reports the first errored cell.
        let doc = crate::json::parse(&report.to_json_string()).expect("document parses");
        let err = validate_json(&doc).expect_err("error cells must fail validation");
        assert!(err.contains("errored"), "{err}");
    }

    /// The deterministic-merge guarantee of the tentpole: the same
    /// configuration produces a byte-identical document serially, at
    /// any worker count, and with the compile cache on or off.
    #[test]
    fn sharded_sweeps_are_byte_identical_at_any_worker_count() {
        let base = EvalConfig {
            packets: 2,
            nreg_sweep: vec![48, 128],
            ..EvalConfig::smoke()
        };
        let suite = scenarios();
        let suite = &suite[..3];
        let serial_uncached = run_eval_on(
            &EvalConfig {
                workers: 1,
                cache: false,
                ..base.clone()
            },
            suite,
        )
        .to_json_string();
        for workers in [1usize, 4, 8] {
            // Drive the scoped-thread merge path directly: the public
            // entry point clamps threads to the machine's parallelism,
            // which on a small CI box would reduce every case to the
            // serial path and test nothing.
            let sharded = run_eval_threads(
                &EvalConfig {
                    workers,
                    cache: true,
                    ..base.clone()
                },
                suite,
                &all_strategies(),
                workers,
                workers,
            )
            .to_json_string();
            assert_eq!(
                serial_uncached, sharded,
                "cached sweep at {workers} workers diverged from the serial baseline"
            );
        }
    }

    /// A strategy that panics only in one deterministic cell of the
    /// grid, to prove worker-level fault isolation.
    struct PanickyAt {
        nreg: usize,
    }

    impl Strategy for PanickyAt {
        fn name(&self) -> &'static str {
            "panicky-at"
        }

        fn compile(&self, _: &[Func], nreg: usize, pu: usize) -> Result<CompiledPu, String> {
            assert!(
                nreg != self.nreg || pu != 0,
                "injected fault at nreg={nreg}"
            );
            Err("never feasible elsewhere".into())
        }
    }

    /// Panic injection under sharding: the poisoned cell is recorded as
    /// an error, every sibling cell — including the same strategy at
    /// other file sizes and other strategies in the same scenarios —
    /// still gets measured by the surviving workers.
    #[test]
    fn a_poisoned_cell_dies_alone_in_a_sharded_sweep() {
        let config = EvalConfig {
            packets: 2,
            nreg_sweep: vec![48, 128],
            workers: 4,
            ..EvalConfig::smoke()
        };
        let suite = scenarios();
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(crate::strategy::Balanced),
            Box::new(PanickyAt { nreg: 48 }),
        ];
        let report = run_eval_threads(&config, &suite[..3], &strategies, 4, 4);
        assert_eq!(report.scenarios.len(), 3);
        for s in &report.scenarios {
            let poisoned = s.cell("panicky-at", 48).expect("poisoned cell present");
            assert!(
                matches!(&poisoned.status, CellStatus::Error(why) if why.contains("injected fault")),
                "expected the injected panic, got {:?}",
                poisoned.status
            );
            let sibling = s.cell("panicky-at", 128).expect("sibling cell present");
            assert!(
                matches!(sibling.status, CellStatus::Infeasible(_)),
                "sibling cell of the panicking strategy still measured: {:?}",
                sibling.status
            );
            for nreg in [48, 128] {
                let balanced = s.cell("balanced", nreg).expect("balanced cell present");
                assert!(
                    !matches!(balanced.status, CellStatus::Error(_)),
                    "a poisoned cell must not spill into other strategies: {:?}",
                    balanced.status
                );
            }
        }
    }

    /// Timing knobs surface in the document — and only there: a timed
    /// run carries run-level and per-cell wall-clock members that
    /// validate, an untimed run omits them entirely.
    #[test]
    fn timing_members_appear_exactly_when_requested() {
        let config = EvalConfig {
            packets: 2,
            nreg_sweep: vec![48],
            timing: true,
            workers: 2,
            ..EvalConfig::smoke()
        };
        let suite = scenarios();
        let report = run_eval_on(&config, &suite[..3]);
        let timing = report.timing.as_ref().expect("timed run records timing");
        assert_eq!(timing.workers, 2);
        assert!(timing.threads >= 1 && timing.threads <= 2);
        assert!(timing.wall_ms >= 0.0);
        let text = report.to_json_string();
        assert!(text.contains("\"timing\""));
        assert!(text.contains("\"elapsed_ms\""));
        let doc = crate::json::parse(&text).expect("timed document parses");
        validate_json(&doc).expect("timed document validates");

        let untimed = run_eval_on(
            &EvalConfig {
                timing: false,
                ..config
            },
            &suite[..3],
        );
        assert!(untimed.timing.is_none());
        let text = untimed.to_json_string();
        assert!(!text.contains("\"timing\""));
        assert!(!text.contains("\"elapsed_ms\""));
    }
}
