//! The per-(scenario, PU) compiled-allocation cache.
//!
//! Within one sweep the same PU thread set is allocated repeatedly: the
//! `balanced` strategy's cell, round 0 of the `balanced-spill` hybrid,
//! and the ladder's first rung all run the *same* deterministic engine
//! search on the *same* inputs — and the ladder's second rung duplicates
//! the hybrid wholesale. On top of that, the engine's greedy descent
//! never consults the register-file size while choosing steps, so one
//! trajectory answers *every* swept `Nreg` at once
//! ([`regbal_core::allocate_threads_sweep`]) and likewise one spill
//! trajectory answers every hybrid cell
//! ([`regbal_core::allocate_threads_with_spill_sweep`]).
//!
//! This cache therefore stores whole-sweep verdict vectors keyed by
//! `(scenario index, pu)`: within a scenario the PU's function set is
//! fixed and the engine config is the default everywhere, so the key
//! pins every input of the search, and a lookup at any `Nreg` of the
//! sweep costs one shared computation for the whole column.
//!
//! Sharing is behaviour-preserving by construction: the engine is
//! deterministic and the sweep entry points return bit-identical
//! verdicts to dedicated per-size runs (proven by the core crate's
//! equivalence tests). The sharded sweep's workers therefore produce
//! byte-identical reports with the cache on or off, at any worker
//! count.

use regbal_analysis::SpillCosts;
use regbal_core::{
    allocate_threads, allocate_threads_sweep, allocate_threads_with_spill_scratch,
    allocate_threads_with_spill_seeded, allocate_threads_with_spill_sweep,
    allocate_threads_with_spill_sweep_scratch, AllocError, EngineConfig, HybridAllocation,
    MultiAllocation, ScratchParams,
};
use regbal_ir::Func;
use regbal_sim::SanitizerConfig;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// One cache key: (scenario index in the suite, PU, register-file
/// size). The strategy is implied by which table the entry lives in.
pub type CacheKey = (usize, usize, usize);

/// The key of one whole-sweep column: (scenario index, PU).
type GroupKey = (usize, usize);

type SweepSlot<T> = Arc<OnceLock<Vec<Result<T, AllocError>>>>;

/// One column's shared spill-cost models, filled once on first use.
type CostSlot = Arc<OnceLock<Arc<Vec<SpillCosts>>>>;

/// Shared allocation verdicts of one evaluation run. Cloning the
/// stored results is cheap relative to the searches they replace; the
/// map locks are held only to fetch a slot, never during allocation,
/// so concurrent workers computing *different* columns don't serialise
/// (workers racing on the *same* slot block on its [`OnceLock`], which
/// is precisely the work-sharing we want).
pub struct AllocCache {
    /// The swept register-file sizes, in report order. Lookups at a
    /// size outside this list fall back to uncached dedicated runs.
    sweep: Vec<usize>,
    balanced: Mutex<HashMap<GroupKey, SweepSlot<MultiAllocation>>>,
    hybrid: Mutex<HashMap<GroupKey, SweepSlot<HybridAllocation>>>,
    scratch: Mutex<HashMap<GroupKey, SweepSlot<HybridAllocation>>>,
    /// The per-thread spill-cost models of one column, computed once
    /// per (scenario, PU) and shared by every spilling strategy and
    /// every swept size of that column.
    costs: Mutex<HashMap<GroupKey, CostSlot>>,
    /// How many times a cost model was actually computed — the proof
    /// that the sweep pays per column, not per (strategy, nreg) cell.
    cost_computes: AtomicUsize,
}

fn slot<T>(map: &Mutex<HashMap<GroupKey, SweepSlot<T>>>, key: GroupKey) -> SweepSlot<T> {
    map.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .entry(key)
        .or_default()
        .clone()
}

impl AllocCache {
    /// A fresh cache for the given `Nreg` sweep.
    pub fn new(sweep: Vec<usize>) -> AllocCache {
        AllocCache {
            sweep,
            balanced: Mutex::default(),
            hybrid: Mutex::default(),
            scratch: Mutex::default(),
            costs: Mutex::default(),
            cost_computes: AtomicUsize::new(0),
        }
    }

    /// The per-thread [`SpillCosts`] of one column, computed on first
    /// demand and replayed for every later lookup of the same
    /// (scenario, PU) — the costs depend only on the unmodified
    /// function set, never on the strategy or the register-file size.
    pub fn spill_costs(&self, key: GroupKey, funcs: &[Func]) -> Arc<Vec<SpillCosts>> {
        let slot = self
            .costs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_default()
            .clone();
        slot.get_or_init(|| {
            self.cost_computes.fetch_add(1, Ordering::Relaxed);
            Arc::new(funcs.iter().map(SpillCosts::compute).collect())
        })
        .clone()
    }

    /// Number of spill-cost models computed so far (one per distinct
    /// (scenario, PU) column touched, however many cells asked).
    pub fn cost_computes(&self) -> usize {
        self.cost_computes.load(Ordering::Relaxed)
    }

    /// The balanced-engine verdict for `funcs` at `key.2` registers,
    /// computed via one whole-sweep descent per (scenario, PU)
    /// ([`regbal_core::allocate_threads_sweep`] with the default
    /// engine) — bit-identical to a dedicated
    /// [`regbal_core::allocate_threads`] run.
    ///
    /// # Errors
    ///
    /// The engine's own verdict — [`AllocError::Infeasible`] and
    /// friends are cached and replayed like successes.
    pub fn balanced(
        &self,
        key: CacheKey,
        funcs: &[Func],
    ) -> Result<MultiAllocation, AllocError> {
        match self.sweep.iter().position(|&n| n == key.2) {
            Some(pos) => {
                let slot = slot(&self.balanced, (key.0, key.1));
                slot.get_or_init(|| {
                    allocate_threads_sweep(funcs, &self.sweep, EngineConfig::default())
                })[pos]
                    .clone()
            }
            None => allocate_threads(funcs, key.2),
        }
    }

    /// The hybrid (balancing + last-resort spilling) verdict for
    /// `funcs` at `key.2` registers and the given spill base, computed
    /// via one whole-sweep spill trajectory per (scenario, PU), its
    /// round 0 seeded from [`AllocCache::balanced`] — so a sweep that
    /// already ran (or will run) the balanced column never pays for
    /// that search twice, and all hybrid cells of the column share one
    /// spill loop.
    ///
    /// # Errors
    ///
    /// The hybrid allocator's own verdict.
    pub fn hybrid(
        &self,
        key: CacheKey,
        funcs: &[Func],
        spill_base: i64,
    ) -> Result<HybridAllocation, AllocError> {
        match self.sweep.iter().position(|&n| n == key.2) {
            Some(pos) => {
                let hybrid_slot = slot(&self.hybrid, (key.0, key.1));
                hybrid_slot.get_or_init(|| {
                    let balanced_slot = slot(&self.balanced, (key.0, key.1));
                    let seeds = balanced_slot.get_or_init(|| {
                        allocate_threads_sweep(funcs, &self.sweep, EngineConfig::default())
                    });
                    allocate_threads_with_spill_sweep(
                        funcs,
                        &self.sweep,
                        spill_base,
                        EngineConfig::default(),
                        Some(seeds),
                    )
                })[pos]
                    .clone()
            }
            None => allocate_threads_with_spill_seeded(
                funcs,
                key.2,
                spill_base,
                EngineConfig::default(),
                None,
            ),
        }
    }

    /// The scratch-tier hybrid verdict (balancing + spilling with the
    /// cheapest slots packed into the scratchpad) for `funcs` at
    /// `key.2` registers, computed via one whole-sweep spill trajectory
    /// per (scenario, PU) exactly like [`AllocCache::hybrid`], with the
    /// column's shared [`AllocCache::spill_costs`] model.
    ///
    /// # Errors
    ///
    /// The hybrid allocator's own verdict.
    pub fn scratch(
        &self,
        key: CacheKey,
        funcs: &[Func],
        spill_base: i64,
        params: ScratchParams,
    ) -> Result<HybridAllocation, AllocError> {
        let costs = self.spill_costs((key.0, key.1), funcs);
        match self.sweep.iter().position(|&n| n == key.2) {
            Some(pos) => {
                let scratch_slot = slot(&self.scratch, (key.0, key.1));
                scratch_slot.get_or_init(|| {
                    let balanced_slot = slot(&self.balanced, (key.0, key.1));
                    let seeds = balanced_slot.get_or_init(|| {
                        allocate_threads_sweep(funcs, &self.sweep, EngineConfig::default())
                    });
                    allocate_threads_with_spill_sweep_scratch(
                        funcs,
                        &self.sweep,
                        spill_base,
                        EngineConfig::default(),
                        Some(seeds),
                        Some(&params),
                        Some(&costs),
                    )
                })[pos]
                    .clone()
            }
            None => allocate_threads_with_spill_scratch(
                funcs,
                key.2,
                spill_base,
                EngineConfig::default(),
                None,
                &params,
                Some(&costs),
            ),
        }
    }
}

/// Everything that determines a chip run's outcome besides the (fixed,
/// per-scenario) workloads: the physical binaries, the sanitizer
/// layouts, and the per-PU degradation counts. Two cells with equal
/// keys — e.g. `balanced` and `balanced-spill` at a size needing no
/// spills, or one strategy across every size it compiles identically
/// for — run the exact same deterministic simulation.
#[derive(Clone, PartialEq)]
pub struct SimKey {
    /// The physical-register binaries, per PU then thread slot.
    pub funcs: Vec<Vec<Func>>,
    /// `None` when sanitizing is off: the layouts then never reach the
    /// chip, so keying on them would only split otherwise-identical
    /// runs.
    pub sanitizers: Option<Vec<SanitizerConfig>>,
    /// Per-PU ladder-descent counts stamped into the run reports.
    pub degraded: Vec<u64>,
}

/// One shared run slot. `None` records a timeout (the run not halting
/// is just as deterministic as any other outcome).
pub type SimSlot<V> = Arc<OnceLock<Option<Arc<V>>>>;

/// One scenario's run slots, scanned linearly on lookup.
type SimShard<V> = Vec<(SimKey, SimSlot<V>)>;

/// Deduplicates chip runs across a sweep's cells, partitioned by
/// scenario (the workloads, an input of the run, are fixed per
/// scenario). Entries are scanned linearly — a scenario produces only
/// a handful of distinct binaries — and `Func` equality bails on the
/// first differing instruction. Behaviour-preserving for the same
/// reason as [`AllocCache`]: the simulator is deterministic, so a hit
/// replays exactly what recomputation would produce. Generic over the
/// run-digest type so the report pipeline keeps its digest private.
pub struct SimCache<V> {
    map: Mutex<HashMap<usize, SimShard<V>>>,
}

impl<V> Default for SimCache<V> {
    fn default() -> Self {
        SimCache {
            map: Mutex::default(),
        }
    }
}

impl<V> SimCache<V> {
    /// The shared slot of `key` within `scenario`, creating it empty on
    /// first sight. Callers race on the slot's [`OnceLock`], so exactly
    /// one of them runs the simulation.
    pub fn slot(&self, scenario: usize, key: &SimKey) -> SimSlot<V> {
        let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        let entries = map.entry(scenario).or_default();
        if let Some((_, slot)) = entries.iter().find(|(k, _)| k == key) {
            return slot.clone();
        }
        let slot = SimSlot::default();
        entries.push((key.clone(), slot.clone()));
        slot
    }
}

/// A bounded map with least-recently-used eviction — the primitive
/// under the allocation server's persistent cross-request caches.
///
/// Recency is tracked with a monotonic touch counter per entry: `get`
/// and `insert` stamp the entry with the next tick, and an insert into
/// a full map evicts the entry with the oldest stamp. Lookups are
/// `O(1)`; only the eviction scan is linear in the capacity, and it
/// runs at most once per insert. Deterministic by construction — the
/// eviction order depends only on the operation sequence.
#[derive(Debug)]
pub struct Lru<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, (V, u64)>,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `cap` entries (`cap` = 0 caches
    /// nothing: every insert immediately evicts the entry it just
    /// added, so the map never grows).
    pub fn new(cap: usize) -> Lru<K, V> {
        Lru {
            cap,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Looks `key` up and, on a hit, marks it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((value, stamp)) => {
                *stamp = tick;
                Some(&*value)
            }
            None => None,
        }
    }

    /// Inserts (or refreshes) `key`, returning the entry evicted to
    /// make room, if any. Re-inserting an existing key refreshes its
    /// recency and never evicts.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.map.get_mut(&key) {
            *slot = (value, tick);
            return None;
        }
        self.map.insert(key, (value, tick));
        if self.map.len() <= self.cap {
            return None;
        }
        let oldest = self
            .map
            .iter()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(k, _)| k.clone())?;
        self.map
            .remove_entry(&oldest)
            .map(|(k, (v, _))| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::parse_func;

    fn hot() -> Func {
        parse_func(
            "func hot {\nbb0:\n v0 = mov 1\n v1 = mov 2\n v2 = mov 3\n v3 = mov 4\n v4 = mov 5\n ctx\n v5 = add v0, v1\n v5 = add v5, v2\n v5 = add v5, v3\n v5 = add v5, v4\n store scratch[v5+0], v5\n halt\n}",
        )
        .unwrap()
    }

    #[test]
    fn cached_verdicts_match_direct_computation() {
        let funcs = vec![hot(), hot()];
        let cache = AllocCache::new(vec![8, 32]);
        let direct = allocate_threads(&funcs, 32).unwrap();
        let cached = cache.balanced((0, 0, 32), &funcs).unwrap();
        assert_eq!(direct.total_registers(), cached.total_registers());
        // Errors replay identically too.
        let e1 = cache.balanced((0, 0, 8), &funcs).unwrap_err();
        let e2 = cache.balanced((0, 0, 8), &funcs).unwrap_err();
        assert_eq!(e1, e2);
        // The hybrid path rescues the infeasible size, seeded by the
        // cached balanced failure.
        let h = cache.hybrid((0, 0, 8), &funcs, 0x8_0000).unwrap();
        assert!(h.spills.iter().sum::<usize>() > 0);
        let plain = regbal_core::allocate_threads_with_spill_at(&funcs, 8, 0x8_0000).unwrap();
        assert_eq!(h.funcs, plain.funcs);
        assert_eq!(h.spills, plain.spills);
        // Sizes outside the sweep still answer, uncached.
        let off = cache.balanced((0, 0, 16), &funcs);
        assert_eq!(
            format!("{off:?}"),
            format!("{:?}", allocate_threads(&funcs, 16))
        );
        let off_h = cache.hybrid((0, 0, 3), &funcs, 0x8_0000);
        assert_eq!(
            format!("{off_h:?}"),
            format!(
                "{:?}",
                regbal_core::allocate_threads_with_spill_at(&funcs, 3, 0x8_0000)
            )
        );
    }

    /// Same function set, different (Nthd, Nreg, strategy): every axis
    /// must reach a distinct verdict — nothing may alias across keys.
    #[test]
    fn alloc_cache_keys_are_distinct_per_axis() {
        let sweep = vec![8, 24, 32];
        let cache = AllocCache::new(sweep.clone());
        let two = vec![hot(), hot()];
        let four = vec![hot(), hot(), hot(), hot()];

        // Nreg axis: the same column answers each size with its own
        // verdict (8 is infeasible for four threads, 32 fits).
        assert!(cache.balanced((0, 0, 8), &four).is_err());
        assert!(cache.balanced((0, 0, 32), &four).is_ok());

        // Nthd axis: the same (scenario, pu) key must never be reused
        // across different function sets — distinct groups get distinct
        // keys, and their verdicts differ.
        let a = cache.balanced((0, 1, 32), &two).unwrap();
        let b = cache.balanced((1, 1, 32), &four).unwrap();
        assert_eq!(a.threads.len(), 2);
        assert_eq!(b.threads.len(), 4);

        // Strategy axis: balanced and hybrid verdicts of one key live
        // in separate tables; at a size where balancing fails, the
        // hybrid entry still answers with spills.
        let e = cache.balanced((2, 0, 8), &four).unwrap_err();
        let h = cache.hybrid((2, 0, 8), &four, 0x8_0000).unwrap();
        assert_eq!(e.code(), "infeasible");
        assert!(h.spills.iter().sum::<usize>() > 0);
    }

    /// One whole-sweep descent answers every size of the column: after
    /// the first lookup the slot is initialised, and every other size
    /// replays from the same shared vector.
    #[test]
    fn sweep_slots_are_computed_once_and_reused() {
        let sweep = vec![8, 16, 24, 32];
        let cache = AllocCache::new(sweep.clone());
        let funcs = vec![hot(), hot()];
        let first = cache.balanced((0, 0, 32), &funcs).unwrap();
        let slot = slot(&cache.balanced, (0, 0));
        let vec = slot.get().expect("first lookup filled the sweep slot");
        assert_eq!(vec.len(), sweep.len(), "one verdict per swept size");
        // Every subsequent size is a replay of the stored vector, not a
        // recomputation: the stored verdict and the lookup agree.
        for (pos, &nreg) in sweep.iter().enumerate() {
            let replayed = cache.balanced((0, 0, nreg), &funcs);
            assert_eq!(
                format!("{replayed:?}"),
                format!("{:?}", vec[pos]),
                "size {nreg} must replay the trajectory verdict"
            );
        }
        let again = cache.balanced((0, 0, 32), &funcs).unwrap();
        assert_eq!(first.total_registers(), again.total_registers());
    }

    /// SimCache key distinctness: binaries, sanitizer layouts and
    /// degradation counts each split entries; scenarios partition them.
    #[test]
    fn sim_cache_distinguishes_funcs_sanitizers_and_scenarios() {
        let cache: SimCache<u32> = SimCache::default();
        let base = SimKey {
            funcs: vec![vec![hot()]],
            sanitizers: None,
            degraded: vec![0],
        };
        let slot_a = cache.slot(0, &base);
        slot_a.get_or_init(|| Some(Arc::new(1)));
        // Same key, same scenario: the same slot (and its value) again.
        assert_eq!(
            cache.slot(0, &base).get().and_then(|v| v.as_deref()),
            Some(&1)
        );
        // Same key, different scenario: a fresh slot.
        assert!(cache.slot(1, &base).get().is_none());
        // Different degradation count: a fresh slot.
        let degraded = SimKey {
            degraded: vec![2],
            ..base.clone()
        };
        assert!(cache.slot(0, &degraded).get().is_none());
        // Sanitizer layouts split otherwise-identical runs.
        let sanitized = SimKey {
            sanitizers: Some(vec![SanitizerConfig::default()]),
            ..base.clone()
        };
        assert!(cache.slot(0, &sanitized).get().is_none());
    }

    /// The LRU contract under the smallest interesting capacity: each
    /// insert evicts the previous resident, and `get` refreshes
    /// recency so the touched entry survives the next insert.
    #[test]
    fn capacity_one_lru_evicts_in_recency_order() {
        let mut lru: Lru<&str, u32> = Lru::new(1);
        assert!(lru.is_empty());
        assert_eq!(lru.insert("a", 1), None);
        assert_eq!(lru.get(&"a"), Some(&1));
        // A second key evicts the only resident.
        assert_eq!(lru.insert("b", 2), Some(("a", 1)));
        assert_eq!(lru.get(&"a"), None);
        assert_eq!(lru.len(), 1);
        // Re-inserting the resident refreshes it without evicting.
        assert_eq!(lru.insert("b", 3), None);
        assert_eq!(lru.get(&"b"), Some(&3));
        assert_eq!(lru.insert("c", 4), Some(("b", 3)));
    }

    /// Eviction order at a wider capacity: the least recently *used*
    /// entry goes first, not the least recently inserted.
    #[test]
    fn lru_eviction_follows_touches_not_insertion() {
        let mut lru: Lru<u32, &str> = Lru::new(2);
        lru.insert(1, "one");
        lru.insert(2, "two");
        // Touch 1 so 2 becomes the oldest.
        assert_eq!(lru.get(&1), Some(&"one"));
        assert_eq!(lru.insert(3, "three"), Some((2, "two")));
        assert_eq!(lru.get(&1), Some(&"one"));
        assert_eq!(lru.get(&3), Some(&"three"));
        assert_eq!(lru.cap(), 2);
        // Capacity 0 caches nothing.
        let mut none: Lru<u32, u32> = Lru::new(0);
        assert_eq!(none.insert(7, 7), Some((7, 7)));
        assert!(none.is_empty());
    }

    /// The cost-model satellite: one [`SpillCosts`] computation per
    /// (scenario, PU) column, however many (strategy, nreg) cells ask.
    #[test]
    fn spill_costs_are_computed_once_per_column() {
        let funcs = vec![hot(), hot()];
        let cache = AllocCache::new(vec![8, 16, 32]);
        assert_eq!(cache.cost_computes(), 0);
        let sp = ScratchParams {
            base: 0,
            capacity: 4,
        };
        for &n in &[8, 16, 32] {
            let _ = cache.scratch((0, 0, n), &funcs, 0x8_0000, sp);
            let _ = cache.scratch((0, 0, n), &funcs, 0x8_0000, sp);
        }
        assert_eq!(
            cache.cost_computes(),
            1,
            "one model per column, not one per cell"
        );
        // A different column pays exactly once more.
        let _ = cache.scratch((0, 1, 8), &funcs, 0xB_0000, sp);
        assert_eq!(cache.cost_computes(), 2);
        // Direct cost lookups replay the same shared model.
        let a = cache.spill_costs((0, 0), &funcs);
        let b = cache.spill_costs((0, 0), &funcs);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.cost_computes(), 2);
    }

    #[test]
    fn scratch_verdicts_match_dedicated_runs() {
        let funcs = vec![hot(), hot()];
        let cache = AllocCache::new(vec![8]);
        let sp = ScratchParams {
            base: 0x40,
            capacity: 4,
        };
        let cached = cache.scratch((0, 0, 8), &funcs, 0x8_0000, sp).unwrap();
        let direct = allocate_threads_with_spill_scratch(
            &funcs,
            8,
            0x8_0000,
            EngineConfig::default(),
            None,
            &sp,
            None,
        )
        .unwrap();
        assert_eq!(cached.funcs, direct.funcs);
        assert_eq!(cached.scratch_spills, direct.scratch_spills);
        assert!(cached.scratch_spills.iter().sum::<usize>() > 0);
        // A zero-capacity scratchpad degrades to the plain hybrid,
        // bit for bit.
        let zero = cache
            .scratch(
                (1, 0, 8),
                &funcs,
                0x8_0000,
                ScratchParams {
                    base: 0x40,
                    capacity: 0,
                },
            )
            .unwrap();
        let hybrid = cache.hybrid((1, 0, 8), &funcs, 0x8_0000).unwrap();
        assert_eq!(zero.funcs, hybrid.funcs);
        assert_eq!(zero.spills, hybrid.spills);
    }

    #[test]
    fn concurrent_lookups_share_one_computation() {
        let funcs = vec![hot(), hot()];
        let cache = AllocCache::new(vec![32]);
        let regs: Vec<usize> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let cache = &cache;
                    let funcs = &funcs;
                    s.spawn(move || cache.balanced((1, 0, 32), funcs).unwrap().total_registers())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(regs.windows(2).all(|w| w[0] == w[1]));
    }
}
