//! The per-(scenario, PU) compiled-allocation cache.
//!
//! Within one sweep the same PU thread set is allocated repeatedly: the
//! `balanced` strategy's cell, round 0 of the `balanced-spill` hybrid,
//! and the ladder's first rung all run the *same* deterministic engine
//! search on the *same* inputs — and the ladder's second rung duplicates
//! the hybrid wholesale. On top of that, the engine's greedy descent
//! never consults the register-file size while choosing steps, so one
//! trajectory answers *every* swept `Nreg` at once
//! ([`regbal_core::allocate_threads_sweep`]) and likewise one spill
//! trajectory answers every hybrid cell
//! ([`regbal_core::allocate_threads_with_spill_sweep`]).
//!
//! This cache therefore stores whole-sweep verdict vectors keyed by
//! `(scenario index, pu)`: within a scenario the PU's function set is
//! fixed and the engine config is the default everywhere, so the key
//! pins every input of the search, and a lookup at any `Nreg` of the
//! sweep costs one shared computation for the whole column.
//!
//! Sharing is behaviour-preserving by construction: the engine is
//! deterministic and the sweep entry points return bit-identical
//! verdicts to dedicated per-size runs (proven by the core crate's
//! equivalence tests). The sharded sweep's workers therefore produce
//! byte-identical reports with the cache on or off, at any worker
//! count.

use regbal_core::{
    allocate_threads, allocate_threads_sweep, allocate_threads_with_spill_seeded,
    allocate_threads_with_spill_sweep, AllocError, EngineConfig, HybridAllocation,
    MultiAllocation,
};
use regbal_ir::Func;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// One cache key: (scenario index in the suite, PU, register-file
/// size). The strategy is implied by which table the entry lives in.
pub type CacheKey = (usize, usize, usize);

/// The key of one whole-sweep column: (scenario index, PU).
type GroupKey = (usize, usize);

type SweepSlot<T> = Arc<OnceLock<Vec<Result<T, AllocError>>>>;

/// Shared allocation verdicts of one evaluation run. Cloning the
/// stored results is cheap relative to the searches they replace; the
/// map locks are held only to fetch a slot, never during allocation,
/// so concurrent workers computing *different* columns don't serialise
/// (workers racing on the *same* slot block on its [`OnceLock`], which
/// is precisely the work-sharing we want).
pub struct AllocCache {
    /// The swept register-file sizes, in report order. Lookups at a
    /// size outside this list fall back to uncached dedicated runs.
    sweep: Vec<usize>,
    balanced: Mutex<HashMap<GroupKey, SweepSlot<MultiAllocation>>>,
    hybrid: Mutex<HashMap<GroupKey, SweepSlot<HybridAllocation>>>,
}

fn slot<T>(map: &Mutex<HashMap<GroupKey, SweepSlot<T>>>, key: GroupKey) -> SweepSlot<T> {
    map.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .entry(key)
        .or_default()
        .clone()
}

impl AllocCache {
    /// A fresh cache for the given `Nreg` sweep.
    pub fn new(sweep: Vec<usize>) -> AllocCache {
        AllocCache {
            sweep,
            balanced: Mutex::default(),
            hybrid: Mutex::default(),
        }
    }

    /// The balanced-engine verdict for `funcs` at `key.2` registers,
    /// computed via one whole-sweep descent per (scenario, PU)
    /// ([`regbal_core::allocate_threads_sweep`] with the default
    /// engine) — bit-identical to a dedicated
    /// [`regbal_core::allocate_threads`] run.
    ///
    /// # Errors
    ///
    /// The engine's own verdict — [`AllocError::Infeasible`] and
    /// friends are cached and replayed like successes.
    pub fn balanced(
        &self,
        key: CacheKey,
        funcs: &[Func],
    ) -> Result<MultiAllocation, AllocError> {
        match self.sweep.iter().position(|&n| n == key.2) {
            Some(pos) => {
                let slot = slot(&self.balanced, (key.0, key.1));
                slot.get_or_init(|| {
                    allocate_threads_sweep(funcs, &self.sweep, EngineConfig::default())
                })[pos]
                    .clone()
            }
            None => allocate_threads(funcs, key.2),
        }
    }

    /// The hybrid (balancing + last-resort spilling) verdict for
    /// `funcs` at `key.2` registers and the given spill base, computed
    /// via one whole-sweep spill trajectory per (scenario, PU), its
    /// round 0 seeded from [`AllocCache::balanced`] — so a sweep that
    /// already ran (or will run) the balanced column never pays for
    /// that search twice, and all hybrid cells of the column share one
    /// spill loop.
    ///
    /// # Errors
    ///
    /// The hybrid allocator's own verdict.
    pub fn hybrid(
        &self,
        key: CacheKey,
        funcs: &[Func],
        spill_base: i64,
    ) -> Result<HybridAllocation, AllocError> {
        match self.sweep.iter().position(|&n| n == key.2) {
            Some(pos) => {
                let hybrid_slot = slot(&self.hybrid, (key.0, key.1));
                hybrid_slot.get_or_init(|| {
                    let balanced_slot = slot(&self.balanced, (key.0, key.1));
                    let seeds = balanced_slot.get_or_init(|| {
                        allocate_threads_sweep(funcs, &self.sweep, EngineConfig::default())
                    });
                    allocate_threads_with_spill_sweep(
                        funcs,
                        &self.sweep,
                        spill_base,
                        EngineConfig::default(),
                        Some(seeds),
                    )
                })[pos]
                    .clone()
            }
            None => allocate_threads_with_spill_seeded(
                funcs,
                key.2,
                spill_base,
                EngineConfig::default(),
                None,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_ir::parse_func;

    fn hot() -> Func {
        parse_func(
            "func hot {\nbb0:\n v0 = mov 1\n v1 = mov 2\n v2 = mov 3\n v3 = mov 4\n v4 = mov 5\n ctx\n v5 = add v0, v1\n v5 = add v5, v2\n v5 = add v5, v3\n v5 = add v5, v4\n store scratch[v5+0], v5\n halt\n}",
        )
        .unwrap()
    }

    #[test]
    fn cached_verdicts_match_direct_computation() {
        let funcs = vec![hot(), hot()];
        let cache = AllocCache::new(vec![8, 32]);
        let direct = allocate_threads(&funcs, 32).unwrap();
        let cached = cache.balanced((0, 0, 32), &funcs).unwrap();
        assert_eq!(direct.total_registers(), cached.total_registers());
        // Errors replay identically too.
        let e1 = cache.balanced((0, 0, 8), &funcs).unwrap_err();
        let e2 = cache.balanced((0, 0, 8), &funcs).unwrap_err();
        assert_eq!(e1, e2);
        // The hybrid path rescues the infeasible size, seeded by the
        // cached balanced failure.
        let h = cache.hybrid((0, 0, 8), &funcs, 0x8_0000).unwrap();
        assert!(h.spills.iter().sum::<usize>() > 0);
        let plain = regbal_core::allocate_threads_with_spill_at(&funcs, 8, 0x8_0000).unwrap();
        assert_eq!(h.funcs, plain.funcs);
        assert_eq!(h.spills, plain.spills);
        // Sizes outside the sweep still answer, uncached.
        let off = cache.balanced((0, 0, 16), &funcs);
        assert_eq!(
            format!("{off:?}"),
            format!("{:?}", allocate_threads(&funcs, 16))
        );
        let off_h = cache.hybrid((0, 0, 3), &funcs, 0x8_0000);
        assert_eq!(
            format!("{off_h:?}"),
            format!(
                "{:?}",
                regbal_core::allocate_threads_with_spill_at(&funcs, 3, 0x8_0000)
            )
        );
    }

    #[test]
    fn concurrent_lookups_share_one_computation() {
        let funcs = vec![hot(), hot()];
        let cache = AllocCache::new(vec![32]);
        let regs: Vec<usize> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let cache = &cache;
                    let funcs = &funcs;
                    s.spawn(move || cache.balanced((1, 0, 32), funcs).unwrap().total_registers())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(regs.windows(2).all(|w| w[0] == w[1]));
    }
}
