//! The `device` eval scenario family: command-processor-fed packet
//! devices at 4/16/64 worker PUs (see `regbal_sim::device`).
//!
//! Each scenario runs three gates:
//!
//! 1. **Core identity** — the virtual-register device under the
//!    reference granularity-1 slice loop, the serial event core, and
//!    the threaded event core must produce *equal* per-PU
//!    [`RunReport`]s (field-for-field, trace/violation/idle included).
//! 2. **Model check** — the device's order-insensitive global digest
//!    must equal the host-side fold
//!    ([`regbal_workloads::expected_total_digest`]), and every offered
//!    packet must be processed.
//! 3. **Allocation check** — the Ladder-compiled (physical-register)
//!    device, admission-gated by register-file occupancy, must
//!    reproduce the same global digest with zero sanitizer violations.
//!
//! Gate 3 compares *digests*, not reports: a different allocation has
//! different timing, so packets distribute differently over threads —
//! only the commutative global fold is allocation-invariant.

use crate::json::Json;
use crate::strategy::{Ladder, Strategy};
use regbal_ir::Func;
use regbal_sim::device::{ChipCore, PKT_BASE};
use regbal_sim::sanitizer::SanitizerConfig;
use regbal_sim::{Device, DeviceSpec, RunReport};
use regbal_workloads::{build_worker, expected_total_digest, fill_packets};

/// A named device shape in the family.
#[derive(Debug, Clone)]
pub struct DeviceScenario {
    /// Scenario name (`device-<pus>`).
    pub name: String,
    /// The device shape.
    pub spec: DeviceSpec,
}

/// The device scenario family: 4, 16 and 64 worker PUs, four worker
/// threads (rings) per PU, eight-slot rings.
pub fn device_scenarios() -> Vec<DeviceScenario> {
    [(4usize, 192u32), (16, 384), (64, 768)]
        .into_iter()
        .map(|(pus, packets)| DeviceScenario {
            name: format!("device-{pus}"),
            spec: DeviceSpec {
                pus,
                threads_per_pu: 4,
                queue_capacity: 8,
                packets,
            },
        })
        .collect()
}

/// Everything needed to instantiate one device run: programs, per-ring
/// admission limits and the per-chip-PU sanitizer/degradation stamps.
#[derive(Debug, Clone)]
pub struct DeviceProgram {
    /// The command processor (chip PU 0).
    pub cp: Func,
    /// Worker programs, `workers[pu][thread]` in ring order.
    pub workers: Vec<Vec<Func>>,
    /// Per-ring admission depth limits.
    pub limits: Vec<u32>,
    /// Per-chip-PU sanitizer layouts (physical builds only).
    pub sanitizers: Option<Vec<SanitizerConfig>>,
    /// Per-chip-PU ladder-descent counts.
    pub degraded: Vec<u64>,
    /// Per-chip-PU physical registers consumed (0 for virtual builds).
    pub registers_used: Vec<usize>,
}

/// The virtual-register build: the reference semantics, full-capacity
/// admission limits.
pub fn reference_program(spec: &DeviceSpec) -> DeviceProgram {
    let workers = (0..spec.pus)
        .map(|pu| {
            (0..spec.threads_per_pu)
                .map(|t| build_worker(spec, spec.ring(pu, t)))
                .collect()
        })
        .collect();
    DeviceProgram {
        cp: spec.command_processor(),
        workers,
        limits: vec![spec.queue_capacity; spec.rings()],
        sanitizers: None,
        degraded: vec![0; spec.pus + 1],
        registers_used: vec![0; spec.pus + 1],
    }
}

/// The admission policy: a ring on a PU whose code consumes `used` of
/// `nreg` physical registers may hold
/// `clamp(capacity * (nreg - used) / nreg, 1, capacity)` packets —
/// heavier register-file occupancy means shallower queues, coupling
/// admission to allocation quality (cyclotron's occupancy gate at
/// packet granularity).
pub fn occupancy_limit(capacity: u32, nreg: usize, used: usize) -> u32 {
    let free = nreg.saturating_sub(used) as u64;
    let limit = u64::from(capacity) * free / nreg.max(1) as u64;
    (limit as u32).clamp(1, capacity)
}

/// Compiles the device through a register-allocation strategy at
/// `nreg`, deriving each ring's admission limit from its PU's
/// register-file occupancy.
///
/// # Errors
///
/// Propagates the strategy's failure message (the Ladder never fails).
pub fn compile_program(
    spec: &DeviceSpec,
    strategy: &dyn Strategy,
    nreg: usize,
) -> Result<DeviceProgram, String> {
    let reference = reference_program(spec);
    let cp = strategy.compile(std::slice::from_ref(&reference.cp), nreg, 0)?;
    let mut workers = Vec::with_capacity(spec.pus);
    let mut limits = Vec::with_capacity(spec.rings());
    let mut sanitizers = vec![cp.sanitizer.clone()];
    let mut degraded = vec![cp.degraded as u64];
    let mut registers_used = vec![cp.registers_used];
    for pu in 0..spec.pus {
        let compiled = strategy.compile(&reference.workers[pu], nreg, pu + 1)?;
        let limit = occupancy_limit(spec.queue_capacity, nreg, compiled.registers_used);
        limits.extend(std::iter::repeat_n(limit, spec.threads_per_pu));
        sanitizers.push(compiled.sanitizer.clone());
        degraded.push(compiled.degraded as u64);
        registers_used.push(compiled.registers_used);
        workers.push(compiled.funcs);
    }
    Ok(DeviceProgram {
        cp: cp.funcs.into_iter().next().expect("one CP thread"),
        workers,
        limits,
        sanitizers: Some(sanitizers),
        degraded,
        registers_used,
    })
}

/// Digest of one device run.
#[derive(Debug, Clone)]
pub struct DeviceOutcome {
    /// Per-PU reports (CP first).
    pub reports: Vec<RunReport>,
    /// The global wrapping-sum digest.
    pub digest: u32,
    /// Packets processed across all rings.
    pub processed: u64,
    /// Wall-clock cycles (max over PUs).
    pub cycles: u64,
    /// Whether every PU halted within the budget.
    pub halted: bool,
    /// Sanitizer violations across all PUs.
    pub sanitizer_violations: usize,
}

/// Instantiates and runs one device: fills the packet buffer from
/// `seed`, applies the program's limits/sanitizers, runs `core` to
/// `cycle_budget`.
pub fn run_device(
    spec: &DeviceSpec,
    program: &DeviceProgram,
    core: ChipCore,
    cycle_budget: u64,
    seed: u64,
    sanitize: bool,
) -> DeviceOutcome {
    let mut device = Device::new(*spec);
    fill_packets(device.chip_mut().memory_mut(), PKT_BASE, spec.packets, seed);
    for (ring, &limit) in program.limits.iter().enumerate() {
        device.set_depth_limit(ring, limit);
    }
    if sanitize {
        if let Some(configs) = &program.sanitizers {
            for (pu, config) in configs.iter().enumerate() {
                device.chip_mut().enable_sanitizer(pu, config.clone());
            }
        }
    }
    for (pu, &count) in program.degraded.iter().enumerate() {
        device.chip_mut().pu_mut(pu).note_degraded(count);
    }
    device.add_cp(program.cp.clone());
    for (pu, funcs) in program.workers.iter().enumerate() {
        for func in funcs {
            device.add_worker(pu, func.clone());
        }
    }
    let reports = device.run(core, cycle_budget);
    DeviceOutcome {
        digest: device.total_digest(),
        processed: device.total_processed(),
        cycles: reports.iter().map(|r| r.cycles).max().unwrap_or(0),
        halted: device.all_halted(),
        sanitizer_violations: reports
            .iter()
            .map(|r| r.sanitizer_violations().count())
            .sum(),
        reports,
    }
}

/// Configuration of a device-family evaluation.
#[derive(Debug, Clone)]
pub struct DeviceEvalConfig {
    /// Register-file size for the physical build.
    pub nreg: usize,
    /// Cycle budget per run.
    pub cycle_budget: u64,
    /// Packet-generator seed.
    pub seed: u64,
    /// Arm the register-clobber sanitizer on the physical runs.
    pub sanitize: bool,
    /// OS threads for the threaded-core identity gate.
    pub os_threads: usize,
    /// Restrict to the 4- and 16-PU scenarios.
    pub smoke: bool,
}

impl DeviceEvalConfig {
    /// The full family (4/16/64 PUs).
    pub fn full() -> DeviceEvalConfig {
        DeviceEvalConfig {
            nreg: 64,
            cycle_budget: 20_000_000,
            seed: 0xD1CE,
            sanitize: false,
            os_threads: 4,
            smoke: false,
        }
    }

    /// The CI subset: 4 and 16 PUs.
    pub fn smoke() -> DeviceEvalConfig {
        DeviceEvalConfig {
            smoke: true,
            ..DeviceEvalConfig::full()
        }
    }
}

/// One scenario's results.
#[derive(Debug, Clone)]
pub struct DeviceScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Worker PUs.
    pub pus: usize,
    /// Descriptor rings.
    pub rings: usize,
    /// Packets offered.
    pub packets: u32,
    /// Host-model digest of the packet buffer.
    pub expected_digest: u32,
    /// Reference-core run of the virtual-register build.
    pub reference: DeviceOutcome,
    /// Serial event core reports equal the reference's.
    pub event_identical: bool,
    /// Threaded event core reports equal the reference's.
    pub threads_identical: bool,
    /// Event-core run of the Ladder-compiled build.
    pub physical: DeviceOutcome,
    /// Ring admission limits of the physical build.
    pub physical_limits: Vec<u32>,
    /// Physical registers used per chip PU (CP first).
    pub registers_used: Vec<usize>,
}

impl DeviceScenarioReport {
    /// Whether every gate of this scenario passed.
    pub fn ok(&self) -> bool {
        self.event_identical
            && self.threads_identical
            && self.reference.halted
            && self.reference.digest == self.expected_digest
            && self.reference.processed == u64::from(self.packets)
            && self.physical.halted
            && self.physical.digest == self.expected_digest
            && self.physical.processed == u64::from(self.packets)
            && self.physical.sanitizer_violations == 0
            && self.physical.reports.iter().all(|r| r.error.is_none())
            && self.reference.reports.iter().all(|r| r.error.is_none())
    }
}

/// The family report.
#[derive(Debug, Clone)]
pub struct DeviceEvalReport {
    /// The configuration that produced it.
    pub config: DeviceEvalConfig,
    /// Per-scenario results.
    pub scenarios: Vec<DeviceScenarioReport>,
}

impl DeviceEvalReport {
    /// Whether every scenario passed every gate.
    pub fn ok(&self) -> bool {
        self.scenarios.iter().all(DeviceScenarioReport::ok)
    }

    /// The machine-readable report (`regbal-device/1`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str("regbal-device/1")),
            ("nreg".into(), Json::uint(self.config.nreg as u64)),
            ("seed".into(), Json::uint(self.config.seed)),
            ("sanitize".into(), Json::Bool(self.config.sanitize)),
            (
                "os_threads".into(),
                Json::uint(self.config.os_threads as u64),
            ),
            (
                "scenarios".into(),
                Json::Arr(self.scenarios.iter().map(scenario_json).collect()),
            ),
            ("ok".into(), Json::Bool(self.ok())),
        ])
    }
}

fn scenario_json(s: &DeviceScenarioReport) -> Json {
    let outcome = |o: &DeviceOutcome| {
        Json::Obj(vec![
            ("cycles".into(), Json::uint(o.cycles)),
            ("digest".into(), Json::uint(u64::from(o.digest))),
            ("processed".into(), Json::uint(o.processed)),
            ("halted".into(), Json::Bool(o.halted)),
            (
                "sanitizer_violations".into(),
                Json::uint(o.sanitizer_violations as u64),
            ),
            (
                "throughput_ppkc".into(),
                Json::float(o.processed as f64 * 1000.0 / o.cycles.max(1) as f64),
            ),
        ])
    };
    Json::Obj(vec![
        ("name".into(), Json::str(&s.name)),
        ("pus".into(), Json::uint(s.pus as u64)),
        ("rings".into(), Json::uint(s.rings as u64)),
        ("packets".into(), Json::uint(u64::from(s.packets))),
        (
            "expected_digest".into(),
            Json::uint(u64::from(s.expected_digest)),
        ),
        ("reference".into(), outcome(&s.reference)),
        ("event_identical".into(), Json::Bool(s.event_identical)),
        ("threads_identical".into(), Json::Bool(s.threads_identical)),
        ("physical".into(), outcome(&s.physical)),
        (
            "physical_limits".into(),
            Json::Arr(
                s.physical_limits
                    .iter()
                    .map(|&l| Json::uint(u64::from(l)))
                    .collect(),
            ),
        ),
        (
            "registers_used".into(),
            Json::Arr(
                s.registers_used
                    .iter()
                    .map(|&r| Json::uint(r as u64))
                    .collect(),
            ),
        ),
        ("ok".into(), Json::Bool(s.ok())),
    ])
}

/// Runs one scenario through all three gates.
pub fn run_device_scenario(
    scenario: &DeviceScenario,
    config: &DeviceEvalConfig,
) -> DeviceScenarioReport {
    let spec = &scenario.spec;
    let reference = reference_program(spec);
    // Host-model digest over the same seeded buffer the runs use.
    let expected_digest = {
        let mut probe = regbal_sim::Memory::new(0, 0, spec.sim_config().sdram_size, 0);
        fill_packets(&mut probe, PKT_BASE, spec.packets, config.seed);
        expected_total_digest(&probe, spec.packets)
    };
    let ref_run = run_device(
        spec,
        &reference,
        ChipCore::Reference { granularity: 1 },
        config.cycle_budget,
        config.seed,
        false,
    );
    let event_run = run_device(
        spec,
        &reference,
        ChipCore::Event,
        config.cycle_budget,
        config.seed,
        false,
    );
    let threads_run = run_device(
        spec,
        &reference,
        ChipCore::EventThreads {
            threads: config.os_threads,
        },
        config.cycle_budget,
        config.seed,
        false,
    );
    let physical_program = compile_program(spec, &Ladder, config.nreg)
        .expect("the Ladder strategy never fails");
    let physical = run_device(
        spec,
        &physical_program,
        ChipCore::Event,
        config.cycle_budget,
        config.seed,
        config.sanitize,
    );
    DeviceScenarioReport {
        name: scenario.name.clone(),
        pus: spec.pus,
        rings: spec.rings(),
        packets: spec.packets,
        expected_digest,
        event_identical: event_run.reports == ref_run.reports,
        threads_identical: threads_run.reports == ref_run.reports,
        reference: ref_run,
        physical,
        physical_limits: physical_program.limits.clone(),
        registers_used: physical_program.registers_used.clone(),
    }
}

/// Runs the device family under `config`.
pub fn run_device_eval(config: &DeviceEvalConfig) -> DeviceEvalReport {
    let scenarios = device_scenarios();
    let selected = scenarios
        .iter()
        .filter(|s| !config.smoke || s.spec.pus <= 16)
        .collect::<Vec<_>>();
    DeviceEvalReport {
        config: config.clone(),
        scenarios: selected
            .into_iter()
            .map(|s| run_device_scenario(s, config))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_limit_is_monotone_and_clamped() {
        assert_eq!(occupancy_limit(8, 64, 0), 8);
        assert_eq!(occupancy_limit(8, 64, 64), 1);
        assert_eq!(occupancy_limit(8, 64, 100), 1);
        let mut last = u32::MAX;
        for used in 0..=64 {
            let l = occupancy_limit(8, 64, used);
            assert!(l <= last && (1..=8).contains(&l));
            last = l;
        }
    }

    /// A small end-to-end scenario through all three gates.
    #[test]
    fn small_device_scenario_passes_all_gates() {
        let scenario = DeviceScenario {
            name: "device-2".into(),
            spec: DeviceSpec {
                pus: 2,
                threads_per_pu: 2,
                queue_capacity: 4,
                packets: 32,
            },
        };
        let config = DeviceEvalConfig {
            sanitize: true,
            ..DeviceEvalConfig::smoke()
        };
        let report = run_device_scenario(&scenario, &config);
        assert!(report.event_identical, "serial event core diverged");
        assert!(report.threads_identical, "threaded event core diverged");
        assert_eq!(report.reference.digest, report.expected_digest);
        assert_eq!(report.physical.digest, report.expected_digest);
        assert_eq!(report.physical.processed, 32);
        assert_eq!(report.physical.sanitizer_violations, 0);
        assert!(report.ok());
    }
}
