//! Evaluation scenarios: named thread mixes, four threads per PU.
//!
//! The paper's throughput study (§9, Figs. 13–15) runs heterogeneous
//! mixes — register-hungry, performance-critical kernels next to lean
//! forwarding code — because that imbalance is what a fixed
//! 32-registers-per-thread partition cannot exploit and the balancing
//! allocator can. The suite below reproduces the paper's three
//! scenarios, adds an all-lean control mix (where every strategy should
//! tie) and a two-PU pipeline mix that exercises the multi-PU `Chip`
//! over shared memories.

use regbal_workloads::{Kernel, Workload};

/// Threads per processing unit, as on the IXP1200.
pub const THREADS_PER_PU: usize = 4;

/// A named evaluation scenario: one kernel mix per processing unit.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short stable identifier (used as the JSON key).
    pub name: &'static str,
    /// What the mix demonstrates.
    pub description: &'static str,
    /// The kernels of each PU ([`THREADS_PER_PU`] per entry).
    pub pus: Vec<Vec<Kernel>>,
    /// Whether the mix contains register-hungry critical kernels — the
    /// scenarios on which the paper's headline result must show.
    pub register_hungry: bool,
}

impl Scenario {
    /// Total thread count across all PUs.
    pub fn num_threads(&self) -> usize {
        self.pus.iter().map(Vec::len).sum()
    }

    /// Builds the per-PU workloads, binding each thread to its own
    /// memory slot (slots are numbered across PUs, so all buffers are
    /// disjoint even when PUs share the chip memories).
    ///
    /// # Panics
    ///
    /// Panics if the scenario needs more than the 8 disjoint memory
    /// slots the workload layout guarantees.
    pub fn workloads(&self, packets: u32) -> Vec<Vec<Workload>> {
        assert!(
            self.num_threads() <= 8,
            "{}: at most 8 memory slots available",
            self.name
        );
        let mut slot = 0;
        self.pus
            .iter()
            .map(|kernels| {
                kernels
                    .iter()
                    .map(|&k| {
                        let w = Workload::new(k, slot, packets);
                        slot += 1;
                        w
                    })
                    .collect()
            })
            .collect()
    }
}

/// The evaluation suite.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "s1-md5-fir2dim",
            description: "paper S1: two md5 digests (hungry, critical) + two 2-D filters (lean)",
            pus: vec![vec![
                Kernel::Md5,
                Kernel::Md5,
                Kernel::Fir2dim,
                Kernel::Fir2dim,
            ]],
            register_hungry: true,
        },
        Scenario {
            name: "s2-fwd-md5",
            description: "paper S2: forwarding rx/tx (lean) + two md5 digests (hungry, critical)",
            pus: vec![vec![
                Kernel::L2l3fwdRx,
                Kernel::L2l3fwdTx,
                Kernel::Md5,
                Kernel::Md5,
            ]],
            register_hungry: true,
        },
        Scenario {
            name: "s3-wraps-mix",
            description: "paper S3: wraps rx/tx scheduler (hungry, critical) + fir2dim + frag",
            pus: vec![vec![
                Kernel::WrapsRx,
                Kernel::WrapsTx,
                Kernel::Fir2dim,
                Kernel::Frag,
            ]],
            register_hungry: true,
        },
        Scenario {
            name: "lean-forwarding",
            description: "control: four lean kernels; strategies should tie once nothing spills",
            pus: vec![vec![Kernel::Crc, Kernel::Frag, Kernel::Drr, Kernel::Url]],
            register_hungry: false,
        },
        Scenario {
            name: "two-pu-pipeline",
            description: "two micro-engines over shared memories: rx-side mix and tx-side mix",
            pus: vec![
                vec![Kernel::L2l3fwdRx, Kernel::Md5, Kernel::Crc, Kernel::Fir2dim],
                vec![Kernel::L2l3fwdTx, Kernel::WrapsTx, Kernel::Url, Kernel::Frag],
            ],
            register_hungry: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_paper_scenarios_and_more() {
        let suite = scenarios();
        assert!(suite.len() >= 3, "at least the paper's three scenarios");
        assert!(suite.iter().filter(|s| s.register_hungry).count() >= 3);
        assert!(suite.iter().any(|s| !s.register_hungry), "a control mix");
        assert!(suite.iter().any(|s| s.pus.len() > 1), "a multi-PU mix");
        let names: std::collections::HashSet<_> = suite.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), suite.len(), "names are unique");
    }

    #[test]
    fn every_pu_is_fully_threaded_and_slots_fit() {
        for s in scenarios() {
            for pu in &s.pus {
                assert_eq!(pu.len(), THREADS_PER_PU, "{}", s.name);
            }
            assert!(s.num_threads() <= 8, "{}", s.name);
            let workloads = s.workloads(4);
            let slots: Vec<usize> = workloads.iter().flatten().map(|w| w.slot).collect();
            let unique: std::collections::HashSet<_> = slots.iter().collect();
            assert_eq!(unique.len(), slots.len(), "{}: slots disjoint", s.name);
        }
    }
}
