//! `regbal-serve`: a resident allocation server with a persistent
//! cross-request cache.
//!
//! The one-shot `regbal alloc` pipeline re-parses, re-analyses and
//! re-searches from scratch on every invocation, which dominates
//! end-to-end latency when a fleet of build jobs recompiles the same
//! kernels under drifting register budgets. This crate keeps the
//! allocator resident: clients speak a line-delimited JSON protocol
//! (`regbal-serve/2`) over stdio or TCP — concurrently, N connections
//! sharing one cache, one pool and one on-disk store when
//! `--cache-dir` is set — requests are admitted through
//! a bounded queue and sharded across the eval crate's work-stealing
//! pool, and results persist in a two-tier LRU cache — finished
//! response documents keyed `(content hash, Nthd, Nreg, strategy)`,
//! and per-module *whole-sweep descent trajectories* keyed
//! `(content hash, Nthd)` so one cached descent answers every swept
//! register budget and seeds the degradation ladder.
//!
//! Responses are byte-identical to `regbal alloc --json` and to each
//! other at any worker count: all cache mutation happens serially in
//! admission order on the dispatcher, and workers only race on
//! once-initialised descent cells.
//!
//! Module map:
//!
//! * [`proto`] — the wire protocol: request parsing, content hashing,
//!   structured errors.
//! * [`oneshot`] — the CLI-identical allocation entry points and
//!   `regbal-alloc/1` document builders (shared with `regbal-cli`).
//! * [`cache`] — the persistent response and trajectory tiers.
//! * [`store`] — the content-addressed on-disk cache behind
//!   `--cache-dir` (corrupt entries degrade to cold misses;
//!   size-capped access-ordered GC under `--cache-dir-cap`).
//! * [`faults`] — the deterministic seeded fault-injection plane
//!   (`FaultPlan`): short/failed writes, corrupt reads, client
//!   disconnects, reader stalls and dispatcher write errors at exact
//!   seeded points, for the chaos gates.
//! * [`metrics`] — wall-clock backpressure counters: queue depth,
//!   admission waits, deferred/rejected, per-connection totals.
//! * [`server`] — admission, wave dispatch, the stdio loop and the
//!   concurrent TCP listener with drain-on-shutdown.
//! * [`trace`] — materialising generated traces into request lines and
//!   the `regbal-trace/1` file format.
//! * [`replay`] — the windowed closed-loop replay client, latency
//!   reports, and the sanitizer pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod faults;
pub mod metrics;
pub mod oneshot;
pub mod proto;
pub mod replay;
pub mod server;
pub mod store;
pub mod trace;

pub use cache::{Outcome, ResponseKey, ServeCache, Trajectory};
pub use faults::{FaultPlan, FaultSite};
pub use metrics::{ConnCounters, MetricsSnapshot, ServeMetrics};
pub use oneshot::{alloc_doc, allocate, load_module, replicate, verdict_doc, ServeStrategy, Verdict};
pub use proto::{content_hash, hash_hex, parse_request, Request, SCHEMA};
pub use replay::{
    chaos_json, chaos_replay, pass_json, replay, replay_with_metrics, sanitize_check, ChaosReport,
    PassReport, ReplayConfig,
};
pub use server::{
    serve_lines, serve_lines_metered, serve_listener, serve_tcp, serve_tcp_metered, ServeConfig,
    ServeEnd,
};
pub use store::{DiskRead, DiskStore};
pub use trace::{kernel_text, materialize, request_line, MaterializedRequest, TraceFile};
