//! Materialising generated traces into protocol request lines, and the
//! `regbal-trace/1` on-disk trace format.
//!
//! [`regbal_workloads::generate_trace`] produces abstract requests
//! (kernel + budget + strategy + arrival time); this module turns each
//! into the concrete wire form the server consumes — the kernel's
//! program text (dashes in kernel names become underscores, since the
//! IR grammar only admits identifier function names), its content hash,
//! and a compact `regbal-serve/1` request line. Traces round-trip
//! through a small JSON file so a benchmark run is reproducible from
//! the committed artifact alone, not just from the seed.

use crate::oneshot::ServeStrategy;
use crate::proto;
use regbal_eval::{json, Json};
use regbal_workloads::{Arrival, Kernel, TraceConfig, TraceRequest, TRACE_STRATEGIES};

/// One trace request in wire-ready form.
#[derive(Debug, Clone)]
pub struct MaterializedRequest {
    /// The kernel the program text came from.
    pub kernel: Kernel,
    /// The program text (the kernel built at slot 0, name sanitised).
    pub text: String,
    /// Threads sharing the register file.
    pub nthd: usize,
    /// Register-file size.
    pub nreg: usize,
    /// Allocation strategy.
    pub strategy: ServeStrategy,
    /// Arrival offset from trace start, microseconds.
    pub at_us: u64,
    /// Content hash of `text` (what the server computes at admission).
    pub hash: u64,
}

/// The program text of one kernel as the trace sends it: built at slot
/// 0 with the given packet count, function name sanitised to an
/// identifier.
pub fn kernel_text(kernel: Kernel, packets: u32) -> String {
    let mut func = kernel.build(0, packets);
    func.name = func.name.replace('-', "_");
    format!("{func}")
}

/// Materialises a generated trace: one wire-ready request per trace
/// entry, with each kernel's program built once and shared.
pub fn materialize(trace: &[TraceRequest], packets: u32) -> Vec<MaterializedRequest> {
    let mut texts: std::collections::HashMap<&'static str, (String, u64)> =
        std::collections::HashMap::new();
    trace
        .iter()
        .map(|r| {
            let (text, hash) = texts.entry(r.kernel.name()).or_insert_with(|| {
                let text = kernel_text(r.kernel, packets);
                let hash = proto::content_hash(&text);
                (text, hash)
            });
            MaterializedRequest {
                kernel: r.kernel,
                text: text.clone(),
                nthd: r.nthd,
                nreg: r.nreg,
                strategy: ServeStrategy::parse(r.strategy)
                    .expect("trace strategies are the serve strategies"),
                at_us: r.at_us,
                hash: *hash,
            }
        })
        .collect()
}

/// The compact `regbal-serve/1` request line for one materialised
/// request. With `hash_only`, the line is content-addressed — no
/// program text on the wire (valid once the server has seen the text).
pub fn request_line(id: u64, req: &MaterializedRequest, hash_only: bool) -> String {
    let mut members = vec![
        ("id".to_string(), Json::uint(id)),
        ("kind".to_string(), Json::str("alloc")),
    ];
    if hash_only {
        members.push(("hash".to_string(), Json::str(proto::hash_hex(req.hash))));
    } else {
        members.push(("func".to_string(), Json::str(req.text.clone())));
    }
    members.push(("nthd".to_string(), Json::uint(req.nthd as u64)));
    members.push(("nreg".to_string(), Json::uint(req.nreg as u64)));
    members.push(("strategy".to_string(), Json::str(req.strategy.name())));
    Json::Obj(members).compact()
}

/// A trace as stored on disk: the generating shape plus the concrete
/// request list, so replays don't depend on generator stability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFile {
    /// The seed the trace was generated from (provenance only).
    pub seed: u64,
    /// The arrival model used.
    pub arrival: Arrival,
    /// Packets per thread in the kernel programs.
    pub packets: u32,
    /// The requests, in arrival order.
    pub requests: Vec<TraceRequest>,
}

impl TraceFile {
    /// Generates a trace file from a config.
    pub fn generate(config: &TraceConfig) -> TraceFile {
        TraceFile {
            seed: config.seed,
            arrival: config.arrival,
            packets: config.packets,
            requests: regbal_workloads::generate_trace(config),
        }
    }

    /// The `regbal-trace/1` JSON document.
    pub fn to_json(&self) -> Json {
        let requests = self
            .requests
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("kernel".to_string(), Json::str(r.kernel.name())),
                    ("nthd".to_string(), Json::uint(r.nthd as u64)),
                    ("nreg".to_string(), Json::uint(r.nreg as u64)),
                    ("strategy".to_string(), Json::str(r.strategy)),
                    ("at_us".to_string(), Json::uint(r.at_us)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::str("regbal-trace/1")),
            ("seed".to_string(), Json::uint(self.seed)),
            ("arrival".to_string(), Json::str(self.arrival.name())),
            ("packets".to_string(), Json::uint(u64::from(self.packets))),
            ("requests".to_string(), Json::Arr(requests)),
        ])
    }

    /// Parses a `regbal-trace/1` document.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending member.
    pub fn from_text(text: &str) -> Result<TraceFile, String> {
        let doc = json::parse(text).map_err(|e| format!("trace is not JSON: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some("regbal-trace/1") => {}
            other => return Err(format!("not a regbal-trace/1 file (schema {other:?})")),
        }
        let seed = doc
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("trace is missing `seed`")?;
        let arrival = doc
            .get("arrival")
            .and_then(Json::as_str)
            .ok_or("trace is missing `arrival`")
            .and_then(|s| Arrival::parse(s).map_err(|_| "unknown `arrival`"))?;
        let packets = doc
            .get("packets")
            .and_then(Json::as_u64)
            .ok_or("trace is missing `packets`")? as u32;
        let raw = doc
            .get("requests")
            .and_then(Json::as_arr)
            .ok_or("trace is missing `requests`")?;
        let mut requests = Vec::with_capacity(raw.len());
        for (i, r) in raw.iter().enumerate() {
            let kernel_name = r
                .get("kernel")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("request {i} is missing `kernel`"))?;
            let kernel = kernel_by_name(kernel_name)
                .ok_or_else(|| format!("request {i}: unknown kernel `{kernel_name}`"))?;
            let strategy_name = r
                .get("strategy")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("request {i} is missing `strategy`"))?;
            let strategy = TRACE_STRATEGIES
                .iter()
                .find(|s| **s == strategy_name)
                .copied()
                .ok_or_else(|| format!("request {i}: unknown strategy `{strategy_name}`"))?;
            let field = |name: &str| {
                r.get(name)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("request {i} is missing `{name}`"))
            };
            requests.push(TraceRequest {
                kernel,
                nthd: field("nthd")? as usize,
                nreg: field("nreg")? as usize,
                strategy,
                at_us: field("at_us")?,
            });
        }
        Ok(TraceFile {
            seed,
            arrival,
            packets,
            requests,
        })
    }
}

/// Resolves a kernel by its stable name.
pub fn kernel_by_name(name: &str) -> Option<Kernel> {
    Kernel::ALL.iter().copied().find(|k| k.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oneshot;

    #[test]
    fn every_kernel_materialises_to_parseable_text() {
        for kernel in Kernel::ALL {
            let text = kernel_text(kernel, 4);
            let funcs = oneshot::load_module(&text)
                .unwrap_or_else(|e| panic!("kernel {} failed to load: {e:?}", kernel.name()));
            assert_eq!(funcs.len(), 1);
            assert!(
                !funcs[0].name.contains('-'),
                "kernel names must be sanitised to identifiers"
            );
        }
    }

    #[test]
    fn materialize_shares_program_text_per_kernel() {
        let trace = regbal_workloads::generate_trace(&TraceConfig::default());
        let wire = materialize(&trace, 4);
        assert_eq!(wire.len(), trace.len());
        let mut by_kernel: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
        for req in &wire {
            let prior = by_kernel.entry(req.kernel.name()).or_insert(req.hash);
            assert_eq!(*prior, req.hash, "same kernel, same hash");
            assert_eq!(req.hash, proto::content_hash(&req.text));
        }
        assert!(by_kernel.len() > 1, "the zipf mix covers several kernels");
    }

    #[test]
    fn request_lines_parse_as_protocol_requests() {
        let trace = regbal_workloads::generate_trace(&TraceConfig {
            requests: 5,
            ..TraceConfig::default()
        });
        let wire = materialize(&trace, 4);
        for (i, req) in wire.iter().enumerate() {
            for hash_only in [false, true] {
                let line = request_line(i as u64, req, hash_only);
                match proto::parse_request(&line) {
                    crate::proto::Request::Alloc(Ok(parsed)) => {
                        assert_eq!(parsed.hash, req.hash);
                        assert_eq!(parsed.nthd, req.nthd);
                        assert_eq!(parsed.nreg, req.nreg);
                        assert_eq!(parsed.strategy, req.strategy);
                    }
                    other => panic!("request line did not parse: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn trace_files_round_trip() {
        let file = TraceFile::generate(&TraceConfig {
            requests: 20,
            arrival: Arrival::Bursty,
            ..TraceConfig::default()
        });
        let text = file.to_json().pretty();
        let back = TraceFile::from_text(&text).unwrap();
        assert_eq!(file, back);
        assert!(TraceFile::from_text("{}").is_err());
        assert!(TraceFile::from_text("not json").is_err());
    }
}
