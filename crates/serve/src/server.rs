//! The resident server loop: bounded admission, wave dispatch over the
//! work-stealing pool, deterministic in-order responses — over one
//! transport ([`serve_lines`]) or many concurrent TCP connections
//! ([`serve_tcp`]).
//!
//! Reader threads parse and content-hash each request line at admission
//! and feed one **bounded** queue (a [`std::sync::mpsc`] sync channel —
//! a full queue back-pressures the transport instead of buffering
//! unboundedly; the measured wait is the admission-wait metric). The
//! dispatcher drains whatever is queued into a *wave*, resolves cache
//! hits serially in admission order, shards the misses across the PR-5
//! work-stealing pool ([`regbal_eval::pool::shard_metered`]), then
//! writes every response in admission order. Because all cache mutation
//! is serial and the workers only race on each trajectory's
//! [`std::sync::OnceLock`], the response stream is byte-identical at
//! any worker count.
//!
//! The TCP server admits N connections into the same queue: one accept
//! thread, one reader thread per connection, one dispatcher owning all
//! the writers. Each wave is **fair-interleaved** before resolution —
//! grouped by connection with every connection's own order intact,
//! then taken one request per connection per round — so a bursty
//! neighbour cannot occupy an entire wave. Per-connection response
//! order is still per-connection request order, and for workloads
//! whose cache keys do not overlap another connection's, each
//! connection's transcript is byte-identical to serving it alone
//! (overlapping keys still serve identical *documents* — only the
//! `cached` flags can differ, because one connection's miss becomes
//! the other's hit). A connection that fails mid-request is logged and
//! dropped; the listener keeps accepting. `shutdown` drains: the
//! server stops accepting, finishes every request admitted before the
//! drain completes, and answers the shutdown ack(s) last — unless the
//! server requires a `--shutdown-token` and the request's token does
//! not match, in which case the reply is an in-band `unauthorized`
//! error and serving continues. With `--deadline-ms` set, a request
//! still queued past its deadline is answered with an in-band
//! `timeout` error instead of being computed.

use crate::cache::{Outcome, ServeCache, Trajectory};
use crate::faults::{FaultPlan, FaultSite};
use crate::metrics::ServeMetrics;
use crate::proto::{self, AllocRequest, ProtoError, Request, Source};
use crate::store::DiskStore;
use regbal_eval::{pool, Json};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Instant;

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads sharding each wave's misses (1 = serial; any
    /// count produces byte-identical responses).
    pub workers: usize,
    /// Admission-queue bound: requests in flight between the readers
    /// and the dispatcher before the transport blocks.
    pub queue_cap: usize,
    /// Response-cache capacity (finished outcomes).
    pub cache_cap: usize,
    /// Trajectory-cache capacity (loaded modules + descent vectors).
    pub trajectory_cap: usize,
    /// The register-file sizes the shared descents cover; requests at
    /// other sizes fall back to dedicated (still cached) runs.
    pub sweep: Vec<usize>,
    /// Content-addressed on-disk cache directory: admitted modules and
    /// finished outcomes are written through, and a restarted server
    /// over the same directory answers warm. `None` = memory only.
    pub cache_dir: Option<String>,
    /// Concurrent TCP connections admitted (0 = unlimited). A
    /// connection beyond the cap is answered with one in-band
    /// `overloaded` error line and closed.
    pub max_conns: usize,
    /// TCP reader poll interval, milliseconds: how often an idle
    /// connection checks for drain (bounds shutdown latency).
    pub read_timeout_ms: u64,
    /// Byte cap on the on-disk cache (0 = unbounded). Once exceeded,
    /// least-recently-accessed entries are deleted after each store.
    pub cache_dir_cap: u64,
    /// Per-request deadline, milliseconds (0 = none): a request still
    /// queued when its deadline expires is answered with an in-band
    /// `timeout` error instead of being dispatched. The clock starts
    /// when the reader parses the line.
    pub deadline_ms: u64,
    /// When set, `shutdown` requests must carry a matching `token`
    /// member; otherwise they get an in-band `unauthorized` error and
    /// serving continues.
    pub shutdown_token: Option<String>,
    /// The seeded fault-injection plane (chaos testing only). `None`
    /// in production: every fault site then compiles down to a skipped
    /// `Option` check.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 1,
            queue_cap: 256,
            cache_cap: 4096,
            trajectory_cap: 256,
            sweep: (32..=128).step_by(4).collect(),
            cache_dir: None,
            max_conns: 0,
            read_timeout_ms: 25,
            cache_dir_cap: 0,
            deadline_ms: 0,
            shutdown_token: None,
            faults: None,
        }
    }
}

impl ServeConfig {
    /// Builds the persistent cache this config describes, attaching
    /// the on-disk store when `cache_dir` is set.
    ///
    /// # Errors
    ///
    /// Only a cache directory that cannot be created.
    pub fn open_cache(&self) -> std::io::Result<ServeCache> {
        let cache = ServeCache::new(self.cache_cap, self.trajectory_cap, self.sweep.clone());
        match &self.cache_dir {
            Some(dir) => {
                let mut store = DiskStore::open(std::path::Path::new(dir))?;
                if let Some(plan) = &self.faults {
                    store = store.with_faults(plan.clone());
                }
                if self.cache_dir_cap > 0 {
                    store = store.with_cap(self.cache_dir_cap);
                }
                Ok(cache.with_store(store))
            }
            None => Ok(cache),
        }
    }

    /// Whether `token` authorizes a `shutdown` under this config: any
    /// token when none is required, an exact match otherwise.
    fn shutdown_authorized(&self, token: &Option<String>) -> bool {
        match &self.shutdown_token {
            None => true,
            Some(want) => token.as_deref() == Some(want.as_str()),
        }
    }
}

/// What ended a serving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEnd {
    /// The input reached end-of-file.
    Eof,
    /// A `shutdown` request was acknowledged.
    Shutdown,
}

/// One flattened alloc unit of a wave, remembering which response line
/// (and which batch element) it belongs to.
struct Unit {
    request: Result<AllocRequest, ProtoError>,
    resolution: Resolution,
}

enum Resolution {
    /// Admission failed; the error is ready.
    Error,
    /// Served from the response cache.
    Hit(Outcome),
    /// Duplicate of an earlier unit in the same wave (by flat index);
    /// shares its computation and reports `cached: true`.
    Dup(usize),
    /// Needs computation on the pool (index into the compute list).
    Compute(usize),
    /// Resolved during admission without compute (load failures,
    /// unknown hashes).
    Ready(Outcome),
}

struct ComputeItem {
    trajectory: Arc<Trajectory>,
    nreg: usize,
    strategy: crate::oneshot::ServeStrategy,
}

fn alloc_response_body(unit: &Unit, outcomes: &[Outcome], units: &[Unit]) -> Vec<(String, Json)> {
    match &unit.request {
        Err(e) => vec![
            ("id".into(), e.id.clone()),
            ("error".into(), proto::error_json(&e.code, &e.message, e.at)),
        ],
        Ok(req) => {
            let (outcome, cached) = match &unit.resolution {
                Resolution::Hit(o) => (o.clone(), true),
                Resolution::Ready(o) => (o.clone(), false),
                Resolution::Compute(i) => (outcomes[*i].clone(), false),
                Resolution::Dup(flat) => match &units[*flat].resolution {
                    Resolution::Compute(i) => (outcomes[*i].clone(), true),
                    Resolution::Ready(o) => (o.clone(), true),
                    _ => unreachable!("a dup always points at a computing unit"),
                },
                Resolution::Error => unreachable!("errors carry no request"),
            };
            let mut body = vec![
                ("id".into(), req.id.clone()),
                ("hash".into(), Json::str(proto::hash_hex(req.hash))),
                ("cached".into(), Json::Bool(cached)),
            ];
            match outcome {
                Outcome::Doc(doc) => body.push(("alloc".into(), doc.as_ref().clone())),
                Outcome::Fail { code, message } => {
                    body.push(("error".into(), proto::error_json(&code, &message, None)));
                }
                Outcome::Parse { message, at } => {
                    let at = (at != (0, 0)).then_some(at);
                    body.push(("error".into(), proto::error_json("parse-error", &message, at)));
                }
            }
            body
        }
    }
}

/// Resolves one wave of `(connection, request, admission time)` tuples
/// in wave order — hits and ready errors serially, misses sharded
/// across the pool — and returns one framed response line per request,
/// tagged with its connection and in wave order. This is the single
/// code path every transport shares, which is what makes a
/// connection's transcript independent of how many neighbours it had.
///
/// With `deadline_ms` set, a request whose admission stamp is already
/// past the deadline is answered with an in-band `timeout` error for
/// every alloc unit it carries — never computed, never cached (the
/// deterministic alloc counters see only dispatched work).
fn resolve_wave(
    wave: &[(u64, Request, Instant)],
    config: &ServeConfig,
    cache: &mut ServeCache,
    metrics: Option<&ServeMetrics>,
) -> Vec<(u64, String)> {
    if wave.is_empty() {
        return Vec::new();
    }
    let deadline = (config.deadline_ms > 0)
        .then(|| std::time::Duration::from_millis(config.deadline_ms));
    // Flatten the wave into alloc units (batch elements inline), and
    // resolve each serially in wave order: cache hit, in-wave
    // duplicate, ready error, or a pool job.
    let mut units: Vec<Unit> = Vec::new();
    let mut compute: Vec<ComputeItem> = Vec::new();
    let mut wave_keys: HashMap<crate::cache::ResponseKey, usize> = HashMap::new();
    // (connection, batch id, #units, is_batch)
    let mut spans: Vec<(u64, Json, usize, bool)> = Vec::new();
    for (conn, request, admitted) in wave {
        cache.count_request();
        let (id, subs, is_batch) = match request {
            Request::Alloc(r) => (Json::Null, std::slice::from_ref(r), false),
            Request::Batch { id, requests } => (id.clone(), requests.as_slice(), true),
            Request::Stats { .. } | Request::Shutdown { .. } => {
                unreachable!("controls never enter a wave")
            }
        };
        spans.push((*conn, id, subs.len(), is_batch));
        let expired = deadline.is_some_and(|d| admitted.elapsed() >= d);
        if expired {
            // The whole request times out as a unit (a batch's elements
            // all waited the same queue time).
            for sub in subs {
                let resolution = match sub {
                    Err(_) => Resolution::Error,
                    Ok(_) => {
                        if let Some(m) = metrics {
                            m.note_timeout();
                        }
                        Resolution::Ready(Outcome::Fail {
                            code: "timeout".into(),
                            message: format!(
                                "request exceeded its {}ms deadline before dispatch",
                                config.deadline_ms
                            ),
                        })
                    }
                };
                units.push(Unit {
                    request: sub.clone(),
                    resolution,
                });
            }
            continue;
        }
        for sub in subs {
            let resolution = match sub {
                Err(_) => Resolution::Error,
                Ok(req) => {
                    cache.count_alloc(req.hash);
                    let key = req.key();
                    if let Some(outcome) = cache.lookup(&key) {
                        Resolution::Hit(outcome)
                    } else if let Some(&flat) = wave_keys.get(&key) {
                        cache.counters.hits += 1;
                        cache.counters.misses -= 1; // the lookup above counted a miss
                        Resolution::Dup(flat)
                    } else {
                        wave_keys.insert(key, units.len());
                        let trajectory = match (&req.source, cache.trajectory(req.hash, req.nthd))
                        {
                            (_, Some(t)) => Some(t),
                            (Source::Text(text), None) => {
                                match cache.admit_trajectory(req.hash, req.nthd, text) {
                                    Ok(t) => Some(t),
                                    Err(outcome) => {
                                        cache.store(key, outcome.clone());
                                        units.push(Unit {
                                            request: sub.clone(),
                                            resolution: Resolution::Ready(outcome),
                                        });
                                        continue;
                                    }
                                }
                            }
                            (Source::HashOnly, None) => None,
                        };
                        match trajectory {
                            Some(trajectory) => {
                                compute.push(ComputeItem {
                                    trajectory,
                                    nreg: req.nreg,
                                    strategy: req.strategy,
                                });
                                Resolution::Compute(compute.len() - 1)
                            }
                            None => Resolution::Ready(Outcome::Fail {
                                code: "unknown-hash".into(),
                                message: format!(
                                    "no resident module for hash {} at nthd {} — resend with `func`",
                                    proto::hash_hex(req.hash),
                                    req.nthd
                                ),
                            }),
                        }
                    }
                }
            };
            units.push(Unit {
                request: sub.clone(),
                resolution,
            });
        }
    }

    // The parallel phase: shard the misses across the pool. Workers
    // race only on trajectory OnceLocks, so overlapping descents are
    // computed once and shared.
    let descents: &AtomicU64 = &cache.counters.descents.clone();
    let meter = metrics.map(|m| &m.pool);
    let outcomes = pool::shard_metered(compute.len(), config.workers, meter, |i| {
        let item = &compute[i];
        item.trajectory.outcome(item.nreg, item.strategy, descents)
    });

    // Serial epilogue in admission order: publish fresh outcomes to
    // the cache, then frame each response line.
    for unit in &units {
        if let (Ok(req), Resolution::Compute(i)) = (&unit.request, &unit.resolution) {
            cache.store(req.key(), outcomes[*i].clone());
        }
    }
    let mut lines = Vec::with_capacity(spans.len());
    let mut flat = 0usize;
    for (conn, batch_id, count, is_batch) in spans {
        let doc = if is_batch {
            let subs: Vec<Json> = units[flat..flat + count]
                .iter()
                .map(|u| Json::Obj(alloc_response_body(u, &outcomes, &units)))
                .collect();
            proto::response(vec![
                ("id".into(), batch_id),
                ("batch".into(), Json::Arr(subs)),
            ])
        } else {
            proto::response(alloc_response_body(&units[flat], &outcomes, &units))
        };
        lines.push((conn, doc.compact()));
        flat += count;
    }
    lines
}

/// Reorders one wave for fair admission: items are grouped by
/// connection (each connection's own order preserved — that is what
/// keeps per-connection transcripts byte-identical) and interleaved
/// one per connection per round, connections in first-appearance
/// order. Strict FIFO would let one bursty connection occupy an entire
/// wave; round-robin bounds any connection's queue-jump to one request
/// per round, the serving-layer analogue of the paper's balanced
/// register shares.
fn fair_interleave<T>(items: Vec<T>, conn_of: impl Fn(&T) -> u64) -> Vec<T> {
    let mut groups: Vec<(u64, VecDeque<T>)> = Vec::new();
    for item in items {
        let conn = conn_of(&item);
        match groups.iter_mut().find(|(c, _)| *c == conn) {
            Some((_, q)) => q.push_back(item),
            None => groups.push((conn, VecDeque::from([item]))),
        }
    }
    let mut out: Vec<T> = Vec::new();
    while !groups.is_empty() {
        groups.retain_mut(|(_, q)| {
            if let Some(item) = q.pop_front() {
                out.push(item);
            }
            !q.is_empty()
        });
    }
    out
}

/// The `stats` response line, with the wall-clock metrics member only
/// when asked for (those numbers are non-deterministic; plain `stats`
/// transcripts stay byte-comparable).
fn stats_line(id: Json, cache: &ServeCache, metrics: Option<&ServeMetrics>) -> String {
    let mut body = vec![("id".into(), id), ("stats".into(), cache.stats_json())];
    if let Some(metrics) = metrics {
        body.push(("metrics".into(), metrics.snapshot().to_json()));
    }
    proto::response(body).compact()
}

/// The `shutdown` ack line.
fn ack_line(id: Json) -> String {
    proto::response(vec![("id".into(), id), ("ok".into(), Json::Bool(true))]).compact()
}

/// Sends one admitted request into the bounded queue, measuring the
/// admission wait (and whether the first attempt found the queue
/// full). Returns `false` when the dispatcher is gone.
fn admit<T>(
    tx: &SyncSender<T>,
    value: T,
    metrics: &ServeMetrics,
    conn: u64,
) -> bool {
    let started = Instant::now();
    let value = match tx.try_send(value) {
        Ok(()) => {
            metrics.note_admitted(conn, started.elapsed().as_micros() as u64, false);
            return true;
        }
        Err(TrySendError::Full(value)) => value,
        Err(TrySendError::Disconnected(_)) => return false,
    };
    match tx.send(value) {
        Ok(()) => {
            metrics.note_admitted(conn, started.elapsed().as_micros() as u64, true);
            true
        }
        Err(_) => false,
    }
}

/// Serves one connection: reads request lines from `input` until EOF
/// or a `shutdown` request, writing one response line per request (in
/// request order) to `output`. The cache outlives the call — pass the
/// same [`ServeCache`] again to keep serving warm.
///
/// # Errors
///
/// Only transport failures: an unreadable input or unwritable output.
/// Malformed requests are answered in-band and never end the loop.
pub fn serve_lines<R: Read + Send, W: Write>(
    input: R,
    output: W,
    config: &ServeConfig,
    cache: &mut ServeCache,
) -> std::io::Result<ServeEnd> {
    serve_lines_metered(input, output, config, cache, &ServeMetrics::default())
}

/// [`serve_lines`], recording admission waits, queue depth and pool
/// activity into `metrics`.
///
/// # Errors
///
/// Only transport failures, exactly as [`serve_lines`].
pub fn serve_lines_metered<R: Read + Send, W: Write>(
    input: R,
    output: W,
    config: &ServeConfig,
    cache: &mut ServeCache,
    metrics: &ServeMetrics,
) -> std::io::Result<ServeEnd> {
    let (tx, rx) =
        sync_channel::<Result<(Request, Instant), std::io::Error>>(config.queue_cap.max(1));
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let reader = BufReader::new(input);
            for line in reader.lines() {
                match line {
                    Ok(l) if l.trim().is_empty() => continue,
                    Ok(l) => {
                        let request = proto::parse_request(&l);
                        // The deadline clock starts here — before any
                        // injected stall and before the admission wait,
                        // so both count against it.
                        let at = Instant::now();
                        if let Some(plan) = &config.faults {
                            if plan.fire(FaultSite::ReaderStall) {
                                std::thread::sleep(std::time::Duration::from_millis(
                                    plan.stall_ms(),
                                ));
                            }
                        }
                        // Stop reading once an *authorized* shutdown is
                        // forwarded: the dispatcher will ack and
                        // return, and this thread must not keep
                        // blocking on a transport the client may hold
                        // open. An unauthorized shutdown is answered
                        // in-band and serving continues.
                        let last = matches!(&request, Request::Shutdown { token, .. }
                            if config.shutdown_authorized(token));
                        if !admit(&tx, Ok((request, at)), metrics, 0) || last {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
        });
        let mut out = BufWriter::new(output);
        let end = dispatch(&rx, &mut out, config, cache, metrics);
        drop(rx); // unblock a reader waiting on a full queue
        end
    })
}

/// The in-band response to a `shutdown` whose token did not match.
fn unauthorized_line(id: Json) -> String {
    proto::response(vec![
        ("id".into(), id),
        (
            "error".into(),
            proto::error_json(
                "unauthorized",
                "shutdown requires a valid `token` on this server",
                None,
            ),
        ),
    ])
    .compact()
}

fn dispatch<W: Write>(
    rx: &Receiver<Result<(Request, Instant), std::io::Error>>,
    out: &mut BufWriter<W>,
    config: &ServeConfig,
    cache: &mut ServeCache,
    metrics: &ServeMetrics,
) -> std::io::Result<ServeEnd> {
    loop {
        // Block for the first request, then drain the queue into one
        // wave, stopping at the first control request so stats and
        // shutdown observe every earlier allocation.
        let first = match rx.recv() {
            Ok(job) => {
                metrics.note_dequeued();
                job?
            }
            Err(_) => return Ok(ServeEnd::Eof),
        };
        let mut wave: Vec<(u64, Request, Instant)> = Vec::new();
        let mut control = None;
        match first {
            (c @ (Request::Stats { .. } | Request::Shutdown { .. }), _) => control = Some(c),
            (other, at) => {
                wave.push((0, other, at));
                while let Ok(job) = rx.try_recv() {
                    metrics.note_dequeued();
                    match job? {
                        (c @ (Request::Stats { .. } | Request::Shutdown { .. }), _) => {
                            control = Some(c);
                            break;
                        }
                        (other, at) => wave.push((0, other, at)),
                    }
                }
            }
        }

        for (_, line) in resolve_wave(&wave, config, cache, Some(metrics)) {
            writeln!(out, "{line}")?;
            metrics.note_response(0);
        }
        if !wave.is_empty() {
            out.flush()?;
        }
        match control {
            Some(Request::Stats { id, metrics: want }) => {
                cache.count_request();
                writeln!(out, "{}", stats_line(id, cache, want.then_some(metrics)))?;
                out.flush()?;
            }
            Some(Request::Shutdown { id, token }) => {
                cache.count_request();
                if config.shutdown_authorized(&token) {
                    writeln!(out, "{}", ack_line(id))?;
                    out.flush()?;
                    return Ok(ServeEnd::Shutdown);
                }
                writeln!(out, "{}", unauthorized_line(id))?;
                out.flush()?;
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// The concurrent TCP server.

/// One admission-queue event from the accept loop or a reader thread.
enum Event {
    /// A new connection: the dispatcher takes ownership of the write
    /// half. Always precedes the connection's first `Request`.
    Open { conn: u64, stream: TcpStream },
    /// One parsed request line, stamped at parse time (the deadline
    /// clock).
    Request {
        conn: u64,
        request: Request,
        at: Instant,
    },
    /// The connection reached EOF (or its reader stopped for drain).
    Closed { conn: u64 },
    /// The connection died mid-read; logged, dropped, served around.
    ReadError { conn: u64, error: String },
}

/// An incremental line splitter over raw socket reads. Owning the
/// bytes (instead of `BufReader::read_line`) means a read timeout can
/// never drop a partially-received line — the next read appends to it.
struct LineBuf {
    buf: Vec<u8>,
    scanned: usize,
}

impl LineBuf {
    fn new() -> LineBuf {
        LineBuf {
            buf: Vec::new(),
            scanned: 0,
        }
    }

    fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete line (without its newline), if one arrived.
    fn next_line(&mut self) -> Option<String> {
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let end = self.scanned + pos;
                let line = String::from_utf8_lossy(&self.buf[..end]).into_owned();
                self.buf.drain(..=end);
                self.scanned = 0;
                Some(line)
            }
            None => {
                self.scanned = self.buf.len();
                None
            }
        }
    }

    /// Whatever is buffered at EOF — a half-written final line.
    fn take_partial(&mut self) -> Option<String> {
        if self.buf.is_empty() {
            return None;
        }
        let line = String::from_utf8_lossy(&self.buf).into_owned();
        self.buf.clear();
        self.scanned = 0;
        (!line.trim().is_empty()).then_some(line)
    }
}

/// One connection's reader loop: split lines off the socket, parse,
/// admit. Returns when the connection ends (EOF, error, a forwarded
/// shutdown) or the server starts draining.
fn reader_loop(
    conn: u64,
    stream: &TcpStream,
    tx: &SyncSender<Event>,
    stop: &AtomicBool,
    config: &ServeConfig,
    metrics: &ServeMetrics,
) {
    let mut lines = LineBuf::new();
    let mut scratch = [0u8; 8192];
    let mut stream = stream;
    loop {
        while let Some(line) = lines.next_line() {
            if line.trim().is_empty() {
                continue;
            }
            let request = proto::parse_request(&line);
            let at = Instant::now();
            if let Some(plan) = &config.faults {
                if plan.fire(FaultSite::ReaderStall) {
                    std::thread::sleep(std::time::Duration::from_millis(plan.stall_ms()));
                }
            }
            // Only an *authorized* shutdown ends this reader; an
            // unauthorized one is answered in-band by the dispatcher
            // and the connection keeps being read.
            let last = matches!(&request, Request::Shutdown { token, .. }
                if config.shutdown_authorized(token));
            if !admit(tx, Event::Request { conn, request, at }, metrics, conn) || last {
                // After forwarding a shutdown this reader must not keep
                // blocking on a transport the client may hold open.
                let _ = tx.send(Event::Closed { conn });
                return;
            }
        }
        match stream.read(&mut scratch) {
            Ok(0) => {
                // EOF. A half-written final line is still answered (in
                // all likelihood with `bad-json`, to a peer that may be
                // gone — the dispatcher's write simply fails and the
                // connection is dropped there).
                if let Some(partial) = lines.take_partial() {
                    let request = proto::parse_request(&partial);
                    let at = Instant::now();
                    let _ = admit(tx, Event::Request { conn, request, at }, metrics, conn);
                }
                let _ = tx.send(Event::Closed { conn });
                return;
            }
            Ok(n) => lines.push(&scratch[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // An idle poll tick: the only place drain is observed,
                // so buffered bytes are never abandoned mid-line.
                if stop.load(Ordering::SeqCst) {
                    let _ = tx.send(Event::Closed { conn });
                    return;
                }
            }
            Err(e) => {
                let _ = tx.send(Event::ReadError {
                    conn,
                    error: e.to_string(),
                });
                return;
            }
        }
    }
}

/// The accept loop: admit connections (up to `max_conns`), hand the
/// write half to the dispatcher, spawn a reader per connection.
fn accept_loop<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    listener: &'scope TcpListener,
    tx: SyncSender<Event>,
    stop: &'scope AtomicBool,
    config: &'scope ServeConfig,
    metrics: &'scope ServeMetrics,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let mut next_conn = 0u64;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match stream {
            Ok(s) => s,
            // Transient accept failures (e.g. a connection reset
            // between accept and here) must not kill the listener.
            Err(_) => continue,
        };
        if config.max_conns > 0 && active.load(Ordering::SeqCst) >= config.max_conns {
            metrics.note_rejected();
            let line = proto::response(vec![(
                "error".into(),
                proto::error_json(
                    "overloaded",
                    &format!("server is at its connection cap ({})", config.max_conns),
                    None,
                ),
            )]);
            let _ = writeln!(stream, "{}", line.compact());
            continue; // dropping `stream` closes it
        }
        let writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => {
                metrics.note_dropped();
                continue;
            }
        };
        if stream
            .set_read_timeout(Some(std::time::Duration::from_millis(
                config.read_timeout_ms.max(1),
            )))
            .is_err()
        {
            metrics.note_dropped();
            continue;
        }
        let conn = next_conn;
        next_conn += 1;
        metrics.note_connection();
        active.fetch_add(1, Ordering::SeqCst);
        // The Open event is sent *before* the reader exists, so the
        // dispatcher always owns the writer by the time the first
        // request of this connection reaches it.
        if tx.send(Event::Open { conn, stream: writer }).is_err() {
            break;
        }
        let reader_tx = tx.clone();
        let active = active.clone();
        scope.spawn(move || {
            reader_loop(conn, &stream, &reader_tx, stop, config, metrics);
            active.fetch_sub(1, Ordering::SeqCst);
        });
    }
    // Dropping our `tx` lets the dispatcher observe full drain: the
    // channel disconnects once every reader is gone too.
}

/// One connection's write half, as the dispatcher owns it.
struct Conn {
    writer: BufWriter<TcpStream>,
    /// A write already failed; further responses are discarded.
    dead: bool,
    /// This wave touched the connection; flush once at the wave end.
    touched: bool,
}

/// Writes one response line to `conn`, marking the connection dead on
/// the first failure (logged, never fatal to the server). The
/// dispatcher-write fault site fires here: an injected failure behaves
/// exactly like a peer that vanished mid-write — the connection is
/// dropped and the server keeps serving everyone else. (The stdio
/// dispatcher has no equivalent site: its single transport failing is
/// transport-fatal by design.)
fn write_line(
    conns: &mut HashMap<u64, Conn>,
    conn: u64,
    line: &str,
    faults: Option<&FaultPlan>,
    metrics: &ServeMetrics,
    log: &mut dyn Write,
) {
    let Some(state) = conns.get_mut(&conn) else {
        return; // already closed and reaped
    };
    if state.dead {
        return;
    }
    if faults.is_some_and(|plan| plan.fire(FaultSite::DispatcherWriteFail)) {
        state.dead = true;
        metrics.note_dropped();
        let _ = writeln!(
            log,
            "conn {conn}: write failed (injected fault); dropping connection"
        );
        return;
    }
    match writeln!(state.writer, "{line}") {
        Ok(()) => {
            state.touched = true;
            metrics.note_response(conn);
        }
        Err(e) => {
            state.dead = true;
            metrics.note_dropped();
            let _ = writeln!(log, "conn {conn}: write failed ({e}); dropping connection");
        }
    }
}

/// Unblocks the accept loop after the stop flag is set, by connecting
/// to the listener once. The woken loop observes the flag and exits
/// before treating the wake-up as a real connection.
fn wake_accept(local: std::net::SocketAddr) {
    let _ = TcpStream::connect(local);
}

/// The multi-connection dispatcher: waves in global admission order,
/// responses routed per connection, drain on shutdown.
fn tcp_dispatch(
    rx: &Receiver<Event>,
    config: &ServeConfig,
    cache: &mut ServeCache,
    metrics: &ServeMetrics,
    log: &mut dyn Write,
    stop: &AtomicBool,
    local: std::net::SocketAddr,
) {
    let faults = config.faults.as_deref();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut draining = false;
    // Shutdown acks owed, in admission order; answered after drain.
    let mut acks: Vec<(u64, Json)> = Vec::new();
    loop {
        let mut wave: Vec<(u64, Request, Instant)> = Vec::new();
        let mut control: Option<(u64, Request)> = None;
        // Connections whose reader ended this iteration. Reaping is
        // deferred to the end of the iteration: per-connection FIFO
        // admission means every request of the connection is in (or
        // before) this wave, so its responses are written first.
        let mut reap: Vec<u64> = Vec::new();
        let mut disconnected = false;
        {
            // Returns true once a control request ends the wave.
            let mut handle = |event: Event| -> bool {
                match event {
                    Event::Open { conn, stream } => {
                        conns.insert(
                            conn,
                            Conn {
                                writer: BufWriter::new(stream),
                                dead: false,
                                touched: false,
                            },
                        );
                    }
                    Event::Closed { conn } => reap.push(conn),
                    Event::ReadError { conn, error } => {
                        metrics.note_dropped();
                        let _ = writeln!(
                            log,
                            "conn {conn}: read failed ({error}); dropping connection"
                        );
                        reap.push(conn);
                    }
                    Event::Request { conn, request, at } => {
                        metrics.note_dequeued();
                        match request {
                            c @ (Request::Stats { .. } | Request::Shutdown { .. }) => {
                                control = Some((conn, c));
                                return true;
                            }
                            other => wave.push((conn, other, at)),
                        }
                    }
                }
                false
            };
            // Block for one event, then drain the queue into a wave,
            // stopping at the first control request so stats and
            // shutdown observe every earlier allocation.
            let mut done = match rx.recv() {
                Ok(event) => handle(event),
                // Every producer is gone: the accept loop stopped and
                // all readers exited — the drain is complete.
                Err(_) => {
                    disconnected = true;
                    true
                }
            };
            while !done {
                match rx.try_recv() {
                    Ok(event) => done = handle(event),
                    Err(_) => break,
                }
            }
        }

        // Fair admission: interleave the wave one request per
        // connection per round (per-connection order intact), so a
        // bursty neighbour cannot occupy an entire wave.
        let wave = fair_interleave(wave, |(conn, _, _)| *conn);
        for (conn, line) in resolve_wave(&wave, config, cache, Some(metrics)) {
            write_line(&mut conns, conn, &line, faults, metrics, log);
        }
        for state in conns.values_mut() {
            if state.touched && !state.dead {
                if state.writer.flush().is_err() {
                    state.dead = true;
                    metrics.note_dropped();
                }
                state.touched = false;
            }
        }

        match control {
            Some((conn, Request::Stats { id, metrics: want })) => {
                cache.count_request();
                let line = stats_line(id, cache, want.then_some(metrics));
                write_line(&mut conns, conn, &line, faults, metrics, log);
                if let Some(state) = conns.get_mut(&conn) {
                    let _ = state.writer.flush();
                    state.touched = false;
                }
            }
            Some((conn, Request::Shutdown { id, token })) => {
                cache.count_request();
                if config.shutdown_authorized(&token) {
                    acks.push((conn, id));
                    if !draining {
                        draining = true;
                        stop.store(true, Ordering::SeqCst);
                        wake_accept(local);
                    }
                    // Keep serving: every request admitted before the
                    // readers observe the drain still gets its
                    // response, and the ack comes after all of them.
                } else {
                    let line = unauthorized_line(id);
                    write_line(&mut conns, conn, &line, faults, metrics, log);
                    if let Some(state) = conns.get_mut(&conn) {
                        let _ = state.writer.flush();
                        state.touched = false;
                    }
                }
            }
            _ => {}
        }

        // Reap ended connections — except those still owed a shutdown
        // ack, whose write half must survive until after the drain.
        for conn in reap {
            if acks.iter().any(|(c, _)| *c == conn) {
                continue;
            }
            if let Some(mut state) = conns.remove(&conn) {
                let _ = state.writer.flush();
            }
        }
        if disconnected {
            break;
        }
    }
    // Drain complete: the acks are the last lines their connections
    // ever see.
    for (conn, id) in acks {
        let line = ack_line(id);
        write_line(&mut conns, conn, &line, faults, metrics, log);
    }
    for (_, mut state) in conns.drain() {
        let _ = state.writer.flush();
    }
}

/// Serves concurrent TCP connections from `listener` over one shared
/// persistent cache, until some connection issues `shutdown` (which
/// drains: accepting stops, every admitted request is answered, acks
/// go last). Per-connection read and write failures are logged to
/// `log` and drop only that connection.
///
/// # Errors
///
/// Only a cache directory that cannot be created, or a listener whose
/// local address cannot be read.
pub fn serve_listener(
    listener: TcpListener,
    config: &ServeConfig,
    log: &mut dyn Write,
    metrics: &ServeMetrics,
) -> std::io::Result<()> {
    let mut cache = config.open_cache()?;
    let local = listener.local_addr()?;
    let stop = AtomicBool::new(false);
    let (tx, rx) = sync_channel::<Event>(config.queue_cap.max(1));
    std::thread::scope(|scope| {
        {
            let stop = &stop;
            let listener = &listener;
            let metrics = &*metrics;
            scope.spawn(move || accept_loop(scope, listener, tx, stop, config, metrics));
        }
        tcp_dispatch(&rx, config, &mut cache, metrics, log, &stop, local);
        // Belt and braces: tcp_dispatch only returns after a drain (or
        // a dead accept loop), but make the stop unconditional so the
        // scope's implicit joins below can never hang.
        stop.store(true, Ordering::SeqCst);
        wake_accept(local);
        drop(rx);
    });
    Ok(())
}

/// Serves TCP connections on `addr` — concurrently, over one shared
/// persistent cache — until a connection issues `shutdown`. Announces
/// readiness with one `listening <addr>` line on `announce`; dropped
/// connections are logged to the same writer.
///
/// # Errors
///
/// Bind failures, an unwritable announce stream, or an unusable
/// `cache_dir`.
pub fn serve_tcp(
    addr: &str,
    config: &ServeConfig,
    announce: &mut dyn Write,
) -> std::io::Result<()> {
    serve_tcp_metered(addr, config, announce, &ServeMetrics::default())
}

/// [`serve_tcp`], recording backpressure metrics into `metrics`.
///
/// # Errors
///
/// Exactly as [`serve_tcp`].
pub fn serve_tcp_metered(
    addr: &str,
    config: &ServeConfig,
    announce: &mut dyn Write,
    metrics: &ServeMetrics,
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    writeln!(announce, "listening {}", listener.local_addr()?)?;
    announce.flush()?;
    serve_listener(listener, config, announce, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Shutdown;

    const PROG: &str = "func t {\nbb0:\n v0 = mov 64\n v1 = load sram[v0+0]\n v1 = add v1, 1\n store sram[v0+0], v1\n iter_end\n halt\n}";

    fn fresh_cache(config: &ServeConfig) -> ServeCache {
        ServeCache::new(config.cache_cap, config.trajectory_cap, config.sweep.clone())
    }

    fn serve_script(lines: &[String], config: &ServeConfig, cache: &mut ServeCache) -> Vec<Json> {
        let input = lines.join("\n").into_bytes();
        let mut output = Vec::new();
        serve_lines(&input[..], &mut output, config, cache).unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| regbal_eval::json::parse(l).expect("every response line is JSON"))
            .collect()
    }

    fn alloc_line(id: u64, nreg: usize, strategy: &str) -> String {
        let func = Json::str(PROG).compact();
        format!(
            r#"{{"id": {id}, "kind": "alloc", "func": {func}, "nthd": 2, "nreg": {nreg}, "strategy": "{strategy}"}}"#
        )
    }

    /// A distinct module per tag: same shape, different function name,
    /// hence a different content hash (disjoint cache keys).
    fn tagged_prog(tag: &str) -> String {
        PROG.replace("func t ", &format!("func t{tag} "))
    }

    fn tagged_alloc_line(tag: &str, id: u64, nreg: usize) -> String {
        let func = Json::str(tagged_prog(tag)).compact();
        format!(
            r#"{{"id": {id}, "kind": "alloc", "func": {func}, "nthd": 2, "nreg": {nreg}, "strategy": "balanced"}}"#
        )
    }

    #[test]
    fn repeated_requests_hit_the_cache_with_identical_documents() {
        let config = ServeConfig {
            sweep: vec![8, 32],
            ..ServeConfig::default()
        };
        let mut cache = fresh_cache(&config);
        let lines = vec![
            alloc_line(1, 8, "balanced"),
            alloc_line(2, 8, "balanced"),
            r#"{"id": 3, "kind": "stats"}"#.to_string(),
        ];
        let responses = serve_script(&lines, &config, &mut cache);
        assert_eq!(responses.len(), 3);
        for r in &responses[..2] {
            assert_eq!(r.get("schema").and_then(Json::as_str), Some("regbal-serve/2"));
            assert!(r.get("alloc").is_some(), "{r:?}");
        }
        assert_eq!(responses[1].get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            responses[0].get("alloc").unwrap().pretty(),
            responses[1].get("alloc").unwrap().pretty(),
            "a cache hit replays the identical document"
        );
        let stats = responses[2].get("stats").unwrap();
        assert_eq!(stats.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("misses").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("distinct_functions").and_then(Json::as_u64), Some(1));
        // Plain stats responses never carry the wall-clock metrics.
        assert!(responses[2].get("metrics").is_none());
        // The hash is echoed on both responses, identically.
        assert_eq!(responses[0].get("hash"), responses[1].get("hash"));
    }

    #[test]
    fn stats_with_metrics_carries_the_backpressure_member() {
        let config = ServeConfig {
            sweep: vec![8],
            ..ServeConfig::default()
        };
        let mut cache = fresh_cache(&config);
        let lines = vec![
            alloc_line(1, 8, "balanced"),
            r#"{"id": 2, "kind": "stats", "metrics": true}"#.to_string(),
        ];
        let responses = serve_script(&lines, &config, &mut cache);
        let metrics = responses[1].get("metrics").expect("metrics member");
        assert!(metrics.get("queue_depth_high_water").and_then(Json::as_u64).is_some());
        assert!(metrics.get("admission_wait_p50_us").and_then(Json::as_u64).is_some());
        assert!(metrics.get("admission_wait_p99_us").and_then(Json::as_u64).is_some());
        assert_eq!(metrics.get("pool_waves").and_then(Json::as_u64), Some(1));
        assert_eq!(metrics.get("pool_tasks").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn hash_only_requests_reuse_the_resident_trajectory() {
        let config = ServeConfig {
            sweep: vec![8, 32],
            ..ServeConfig::default()
        };
        let mut cache = fresh_cache(&config);
        let first = serve_script(&[alloc_line(1, 8, "balanced")], &config, &mut cache);
        let hash = first[0].get("hash").and_then(Json::as_str).unwrap().to_string();
        // A new budget for a known module, content-addressed: no func
        // text on the wire, served from the resident descent.
        let line = format!(
            r#"{{"id": 2, "kind": "alloc", "hash": "{hash}", "nthd": 2, "nreg": 32, "strategy": "balanced"}}"#
        );
        let responses = serve_script(
            &[line, r#"{"id": 3, "kind": "stats"}"#.to_string()],
            &config,
            &mut cache,
        );
        assert!(responses[0].get("alloc").is_some(), "{:?}", responses[0]);
        assert_eq!(responses[0].get("cached").and_then(Json::as_bool), Some(false));
        let stats = responses[1].get("stats").unwrap();
        assert_eq!(stats.get("descent_reuses").and_then(Json::as_u64), Some(1));
        // An unknown hash is a clean in-band error.
        let responses = serve_script(
            &[r#"{"id": 4, "kind": "alloc", "hash": "00000000000000ff"}"#.to_string()],
            &config,
            &mut cache,
        );
        let error = responses[0].get("error").unwrap();
        assert_eq!(error.get("code").and_then(Json::as_str), Some("unknown-hash"));
    }

    #[test]
    fn malformed_lines_answer_in_band_and_serving_continues() {
        let config = ServeConfig::default();
        let mut cache = fresh_cache(&config);
        let bad_func = Json::str("func t {\nbb0:\n v0 = frob 1\n}").compact();
        let lines = vec![
            "this is not json".to_string(),
            format!(r#"{{"id": 2, "kind": "alloc", "func": {bad_func}}}"#),
            alloc_line(3, 32, "balanced"),
        ];
        let responses = serve_script(&lines, &config, &mut cache);
        assert_eq!(responses.len(), 3);
        let e0 = responses[0].get("error").unwrap();
        assert_eq!(e0.get("code").and_then(Json::as_str), Some("bad-json"));
        let e1 = responses[1].get("error").unwrap();
        assert_eq!(e1.get("code").and_then(Json::as_str), Some("parse-error"));
        assert_eq!(e1.get("line").and_then(Json::as_u64), Some(3));
        assert!(e1.get("col").and_then(Json::as_u64).is_some());
        assert!(responses[2].get("alloc").is_some(), "the server kept serving");
    }

    #[test]
    fn infeasible_allocations_return_stable_codes_and_cache() {
        let config = ServeConfig {
            sweep: vec![4],
            ..ServeConfig::default()
        };
        let mut cache = fresh_cache(&config);
        let hungry = "func h {\nbb0:\n v0 = mov 1\n v1 = mov 2\n v2 = mov 3\n ctx\n v3 = add v0, v1\n v3 = add v3, v2\n store scratch[v3+0], v3\n halt\n}";
        let func = Json::str(hungry).compact();
        let line = |id: u64, strategy: &str| {
            format!(
                r#"{{"id": {id}, "kind": "alloc", "func": {func}, "nthd": 2, "nreg": 4, "strategy": "{strategy}"}}"#
            )
        };
        let responses = serve_script(
            &[line(1, "balanced"), line(2, "balanced"), line(3, "ladder")],
            &config,
            &mut cache,
        );
        let error = responses[0].get("error").unwrap();
        assert_eq!(error.get("code").and_then(Json::as_str), Some("infeasible"));
        assert!(error
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("cannot fit"));
        // Failures are cached too.
        assert_eq!(responses[1].get("cached").and_then(Json::as_bool), Some(true));
        // The ladder rescues the same module in the same session.
        assert!(responses[2].get("alloc").is_some());
    }

    #[test]
    fn batches_answer_as_one_line_and_share_the_wave() {
        let config = ServeConfig {
            workers: 4,
            sweep: vec![8, 32],
            ..ServeConfig::default()
        };
        let mut cache = fresh_cache(&config);
        let func = Json::str(PROG).compact();
        let batch = format!(
            r#"{{"id": 1, "kind": "batch", "requests": [{{"id": 2, "func": {func}, "nthd": 2, "nreg": 8}}, {{"id": 3, "func": {func}, "nthd": 2, "nreg": 32}}, {{"id": 4, "func": {func}, "nthd": 2, "nreg": 8}}, {{"id": 5}}]}}"#
        );
        let responses = serve_script(&[batch], &config, &mut cache);
        assert_eq!(responses.len(), 1);
        let subs = responses[0].get("batch").and_then(Json::as_arr).unwrap();
        assert_eq!(subs.len(), 4);
        assert!(subs[0].get("alloc").is_some());
        assert!(subs[1].get("alloc").is_some());
        // The duplicate element shares the first element's computation.
        assert_eq!(subs[2].get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            subs[0].get("alloc").unwrap().pretty(),
            subs[2].get("alloc").unwrap().pretty()
        );
        assert_eq!(
            subs[3].get("error").unwrap().get("code").and_then(Json::as_str),
            Some("bad-request")
        );
    }

    #[test]
    fn responses_are_byte_identical_at_any_worker_count() {
        let lines: Vec<String> = (0..6)
            .map(|i| alloc_line(i, [8, 32, 8][i as usize % 3], ["balanced", "ladder"][i as usize % 2]))
            .chain([r#"{"id": 99, "kind": "stats"}"#.to_string()])
            .collect();
        let mut transcripts = Vec::new();
        for workers in [1, 4] {
            let config = ServeConfig {
                workers,
                sweep: vec![8, 32],
                ..ServeConfig::default()
            };
            let mut cache = fresh_cache(&config);
            let input = lines.join("\n").into_bytes();
            let mut output = Vec::new();
            serve_lines(&input[..], &mut output, &config, &mut cache).unwrap();
            transcripts.push(output);
        }
        assert_eq!(
            transcripts[0], transcripts[1],
            "worker count leaked into the response bytes"
        );
    }

    #[test]
    fn shutdown_acknowledges_and_ends_the_loop() {
        let config = ServeConfig::default();
        let mut cache = fresh_cache(&config);
        let input = format!(
            "{}\n{}\n{}\n",
            alloc_line(1, 32, "balanced"),
            r#"{"id": 2, "kind": "shutdown"}"#,
            alloc_line(3, 32, "balanced"), // never served
        )
        .into_bytes();
        let mut output = Vec::new();
        let end = serve_lines(&input[..], &mut output, &config, &mut cache).unwrap();
        assert_eq!(end, ServeEnd::Shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 2, "{lines:?}");
        let ack = regbal_eval::json::parse(lines[1]).unwrap();
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn eviction_pressure_is_counted() {
        let config = ServeConfig {
            cache_cap: 1,
            sweep: vec![8, 32],
            ..ServeConfig::default()
        };
        let mut cache = fresh_cache(&config);
        // A control request after each alloc pins the wave boundaries,
        // so the eviction sequence is exact: store 8, store 32 (evict
        // 8), re-miss 8 (evict 32).
        let stats_line = r#"{"id": 0, "kind": "stats"}"#.to_string();
        let lines = vec![
            alloc_line(1, 8, "balanced"),
            stats_line.clone(),
            alloc_line(2, 32, "balanced"),
            stats_line.clone(),
            alloc_line(3, 8, "balanced"), // evicted above, recomputed
            stats_line,
        ];
        let responses = serve_script(&lines, &config, &mut cache);
        let stats = responses[5].get("stats").unwrap();
        assert_eq!(stats.get("evictions").and_then(Json::as_u64), Some(2));
        assert_eq!(stats.get("misses").and_then(Json::as_u64), Some(3));
        assert_eq!(stats.get("entries").and_then(Json::as_u64), Some(1));
        assert_eq!(responses[4].get("cached").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn fair_interleave_round_robins_and_preserves_per_conn_order() {
        // Connection 7 bursts four requests; 8 and 9 send one each.
        let wave = vec![(7u64, "a1"), (7, "a2"), (7, "a3"), (8, "b1"), (7, "a4"), (9, "c1")];
        let fair = fair_interleave(wave, |(c, _)| *c);
        assert_eq!(
            fair,
            vec![(7, "a1"), (8, "b1"), (9, "c1"), (7, "a2"), (7, "a3"), (7, "a4")]
        );
        // Degenerate cases: empty, and a single connection is FIFO.
        assert!(fair_interleave(Vec::<(u64, u8)>::new(), |(c, _)| *c).is_empty());
        let solo = vec![(1u64, 1), (1, 2), (1, 3)];
        assert_eq!(fair_interleave(solo.clone(), |(c, _)| *c), solo);
    }

    #[test]
    fn unauthorized_shutdowns_answer_in_band_and_serving_continues() {
        let config = ServeConfig {
            sweep: vec![32],
            shutdown_token: Some("s3cret".into()),
            ..ServeConfig::default()
        };
        let mut cache = fresh_cache(&config);
        let lines = vec![
            alloc_line(1, 32, "balanced"),
            r#"{"id": 2, "kind": "shutdown"}"#.to_string(),
            r#"{"id": 3, "kind": "shutdown", "token": "wrong"}"#.to_string(),
            alloc_line(4, 32, "balanced"),
            r#"{"id": 5, "kind": "shutdown", "token": "s3cret"}"#.to_string(),
        ];
        let input = lines.join("\n").into_bytes();
        let mut output = Vec::new();
        let end = serve_lines(&input[..], &mut output, &config, &mut cache).unwrap();
        assert_eq!(end, ServeEnd::Shutdown);
        let responses: Vec<Json> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| regbal_eval::json::parse(l).unwrap())
            .collect();
        assert_eq!(responses.len(), 5, "{responses:?}");
        assert!(responses[0].get("alloc").is_some());
        for r in &responses[1..3] {
            assert_eq!(
                r.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
                Some("unauthorized"),
                "{r:?}"
            );
        }
        assert!(
            responses[3].get("alloc").is_some(),
            "serving ended on an unauthorized shutdown"
        );
        assert_eq!(responses[4].get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn expired_requests_time_out_in_band_and_are_not_cached() {
        // An injected reader stall makes the first request provably
        // older than the deadline by the time the dispatcher sees it.
        let plan = Arc::new(
            FaultPlan::seeded(7)
                .with_exact(FaultSite::ReaderStall, &[0])
                .with_stall_ms(80),
        );
        let config = ServeConfig {
            sweep: vec![32],
            deadline_ms: 20,
            faults: Some(plan),
            ..ServeConfig::default()
        };
        let mut cache = fresh_cache(&config);
        let metrics = ServeMetrics::default();
        let lines = [
            alloc_line(1, 32, "balanced"),
            alloc_line(2, 32, "balanced"),
            r#"{"id": 3, "kind": "stats"}"#.to_string(),
        ];
        let input = lines.join("\n").into_bytes();
        let mut output = Vec::new();
        serve_lines_metered(&input[..], &mut output, &config, &mut cache, &metrics).unwrap();
        let responses: Vec<Json> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| regbal_eval::json::parse(l).unwrap())
            .collect();
        assert_eq!(responses.len(), 3);
        let error = responses[0].get("error").expect("a timeout error");
        assert_eq!(error.get("code").and_then(Json::as_str), Some("timeout"));
        assert!(error
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("20ms deadline"));
        // The identical second request (stamped after the stall) is
        // computed fresh — the timeout was never cached.
        assert!(responses[1].get("alloc").is_some(), "{:?}", responses[1]);
        assert_eq!(responses[1].get("cached").and_then(Json::as_bool), Some(false));
        let stats = responses[2].get("stats").unwrap();
        // Only the served request touched the alloc counters.
        assert_eq!(stats.get("allocs").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("misses").and_then(Json::as_u64), Some(1));
        assert_eq!(metrics.snapshot().timeouts, 1);
    }

    // -----------------------------------------------------------------
    // The concurrent TCP server.

    /// Starts a server on an ephemeral port in a background thread.
    /// Returns the address and the join handle (which yields the
    /// serve result and the log).
    fn spawn_server(
        config: ServeConfig,
    ) -> (
        std::net::SocketAddr,
        std::thread::JoinHandle<(std::io::Result<()>, String)>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let metrics = ServeMetrics::default();
            let mut log = Vec::new();
            let result = serve_listener(listener, &config, &mut log, &metrics);
            (result, String::from_utf8_lossy(&log).into_owned())
        });
        (addr, handle)
    }

    /// Sends `lines` over one TCP connection (half-closing the write
    /// side after the last line) and reads `expect` response lines.
    fn tcp_client(addr: std::net::SocketAddr, lines: &[String], expect: usize) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).unwrap();
        for line in lines {
            writeln!(stream, "{line}").unwrap();
        }
        stream.shutdown(Shutdown::Write).unwrap();
        let mut reader = BufReader::new(stream);
        (0..expect)
            .map(|i| {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap_or_else(|e| {
                    panic!("response {i}: {e}");
                });
                assert!(!line.is_empty(), "server closed before response {i}");
                line.trim_end().to_string()
            })
            .collect()
    }

    fn send_shutdown(addr: std::net::SocketAddr) {
        let lines = [r#"{"id": "bye", "kind": "shutdown"}"#.to_string()];
        let responses = tcp_client(addr, &lines, 1);
        let ack = regbal_eval::json::parse(&responses[0]).unwrap();
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true), "{responses:?}");
    }

    #[test]
    fn concurrent_disjoint_clients_see_their_solo_transcripts() {
        let config = ServeConfig {
            workers: 2,
            sweep: vec![8, 32],
            ..ServeConfig::default()
        };
        let (addr, server) = spawn_server(config.clone());
        let tags = ["a", "b", "c"];
        let scripts: Vec<Vec<String>> = tags
            .iter()
            .map(|tag| {
                (0..4)
                    .map(|i| tagged_alloc_line(tag, i, [8, 32, 8, 32][i as usize]))
                    .collect()
            })
            .collect();
        // Solo baselines: each client's script against a fresh
        // single-connection server.
        let solos: Vec<Vec<String>> = scripts
            .iter()
            .map(|script| {
                let mut cache = fresh_cache(&config);
                let input = script.join("\n").into_bytes();
                let mut output = Vec::new();
                serve_lines(&input[..], &mut output, &config, &mut cache).unwrap();
                String::from_utf8(output)
                    .unwrap()
                    .lines()
                    .map(str::to_string)
                    .collect()
            })
            .collect();
        // All three clients at once against one shared server.
        let transcripts: Vec<Vec<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = scripts
                .iter()
                .map(|script| scope.spawn(move || tcp_client(addr, script, script.len())))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, (concurrent, solo)) in transcripts.iter().zip(&solos).enumerate() {
            assert_eq!(
                concurrent, solo,
                "client {i}: concurrent transcript diverged from solo service"
            );
        }
        send_shutdown(addr);
        let (result, _log) = server.join().unwrap();
        result.unwrap();
    }

    #[test]
    fn a_client_disconnecting_mid_request_does_not_kill_the_listener() {
        let (addr, server) = spawn_server(ServeConfig {
            sweep: vec![32],
            ..ServeConfig::default()
        });
        // A client that sends half a request line and vanishes.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(br#"{"id": 1, "kind": "alloc", "func": "fu"#)
                .unwrap();
            // Dropping the stream closes the socket mid-line.
        }
        // The listener must still serve a healthy connection.
        let lines = [alloc_line(2, 32, "balanced")];
        let responses = tcp_client(addr, &lines, 1);
        let doc = regbal_eval::json::parse(&responses[0]).unwrap();
        assert!(doc.get("alloc").is_some(), "{responses:?}");
        send_shutdown(addr);
        let (result, _log) = server.join().unwrap();
        result.unwrap();
    }

    #[test]
    fn shutdown_drains_other_connections_before_acking() {
        let (addr, server) = spawn_server(ServeConfig {
            sweep: vec![8, 32],
            ..ServeConfig::default()
        });
        // Client B: two allocs, write side closed — its lines are all
        // at its reader before the drain can begin.
        let mut b = TcpStream::connect(addr).unwrap();
        writeln!(b, "{}", tagged_alloc_line("b", 1, 8)).unwrap();
        writeln!(b, "{}", tagged_alloc_line("b", 2, 32)).unwrap();
        b.shutdown(Shutdown::Write).unwrap();
        let mut b_reader = BufReader::new(b);
        // B's first response proves both lines were admitted before we
        // let client A shut the server down.
        let mut b1 = String::new();
        b_reader.read_line(&mut b1).unwrap();
        assert!(
            regbal_eval::json::parse(b1.trim_end()).unwrap().get("alloc").is_some(),
            "{b1:?}"
        );

        // Client A: one alloc, then shutdown. Drain must answer A's
        // alloc and B's remaining alloc before the ack.
        let a_lines = [
            tagged_alloc_line("a", 1, 8),
            r#"{"id": "bye", "kind": "shutdown"}"#.to_string(),
        ];
        let a_responses = tcp_client(addr, &a_lines, 2);
        assert!(
            regbal_eval::json::parse(&a_responses[0]).unwrap().get("alloc").is_some(),
            "{a_responses:?}"
        );
        let ack = regbal_eval::json::parse(&a_responses[1]).unwrap();
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));

        // B's second response arrived despite the shutdown coming from
        // another connection.
        let mut b2 = String::new();
        b_reader.read_line(&mut b2).unwrap();
        assert!(
            regbal_eval::json::parse(b2.trim_end()).unwrap().get("alloc").is_some(),
            "drain dropped an admitted request: {b2:?}"
        );
        let (result, _log) = server.join().unwrap();
        result.unwrap();
    }

    #[test]
    fn the_connection_cap_rejects_in_band_and_recovers() {
        let (addr, server) = spawn_server(ServeConfig {
            sweep: vec![32],
            max_conns: 1,
            ..ServeConfig::default()
        });
        // Occupy the only slot with an idle connection.
        let held = TcpStream::connect(addr).unwrap();
        // Give the accept loop a moment to admit it.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let mut second = TcpStream::connect(addr).unwrap();
        let mut line = String::new();
        BufReader::new(&mut second).read_line(&mut line).unwrap();
        let doc = regbal_eval::json::parse(line.trim_end()).unwrap();
        assert_eq!(
            doc.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some("overloaded")
        );
        drop(second);
        drop(held); // frees the slot (after the reader notices EOF)
        std::thread::sleep(std::time::Duration::from_millis(100));
        let lines = [alloc_line(1, 32, "balanced")];
        let responses = tcp_client(addr, &lines, 1);
        assert!(regbal_eval::json::parse(&responses[0]).unwrap().get("alloc").is_some());
        send_shutdown(addr);
        let (result, _log) = server.join().unwrap();
        result.unwrap();
    }

    #[test]
    fn a_token_gated_tcp_server_rejects_and_then_obeys_shutdown() {
        let (addr, server) = spawn_server(ServeConfig {
            sweep: vec![32],
            shutdown_token: Some("s3cret".into()),
            ..ServeConfig::default()
        });
        let lines = [
            r#"{"id": 1, "kind": "shutdown"}"#.to_string(),
            alloc_line(2, 32, "balanced"),
            r#"{"id": 3, "kind": "shutdown", "token": "s3cret"}"#.to_string(),
        ];
        let responses = tcp_client(addr, &lines, 3);
        let unauthorized = regbal_eval::json::parse(&responses[0]).unwrap();
        assert_eq!(
            unauthorized
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("unauthorized")
        );
        assert!(
            regbal_eval::json::parse(&responses[1]).unwrap().get("alloc").is_some(),
            "the rejected shutdown must not stop service: {responses:?}"
        );
        let ack = regbal_eval::json::parse(&responses[2]).unwrap();
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
        let (result, _log) = server.join().unwrap();
        result.unwrap();
    }

    #[test]
    fn an_injected_dispatcher_write_failure_drops_only_that_connection() {
        let plan = Arc::new(FaultPlan::seeded(11).with_exact(FaultSite::DispatcherWriteFail, &[0]));
        let (addr, server) = spawn_server(ServeConfig {
            sweep: vec![32],
            faults: Some(plan.clone()),
            ..ServeConfig::default()
        });
        // Victim: its one response hits the injected write failure, so
        // it sees EOF instead of a line.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            writeln!(stream, "{}", alloc_line(1, 32, "balanced")).unwrap();
            stream.shutdown(Shutdown::Write).unwrap();
            let mut line = String::new();
            BufReader::new(stream).read_line(&mut line).unwrap();
            assert!(line.is_empty(), "the dropped connection still got: {line:?}");
        }
        // The server survives and serves the next connection normally.
        let responses = tcp_client(addr, &[alloc_line(2, 32, "balanced")], 1);
        assert!(regbal_eval::json::parse(&responses[0]).unwrap().get("alloc").is_some());
        assert_eq!(plan.fired_count(FaultSite::DispatcherWriteFail), 1);
        send_shutdown(addr);
        let (result, log) = server.join().unwrap();
        result.unwrap();
        assert!(log.contains("injected fault"), "{log:?}");
    }

    /// A scratch cache directory, wiped at the start of the test.
    fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "regbal-serve-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn a_restarted_server_over_the_same_cache_dir_answers_warm() {
        let dir = temp_cache_dir("restart");
        let config = ServeConfig {
            sweep: vec![8, 32],
            cache_dir: Some(dir.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        };
        // First server: a cold miss, persisted through to disk.
        let mut cache = config.open_cache().unwrap();
        let cold = serve_script(&[alloc_line(1, 8, "balanced")], &config, &mut cache);
        assert_eq!(cold[0].get("cached").and_then(Json::as_bool), Some(false));
        drop(cache);
        // Second server: a brand-new cache over the same directory
        // answers the repeated request warm, byte-identically.
        let mut cache = config.open_cache().unwrap();
        let warm = serve_script(
            &[
                alloc_line(1, 8, "balanced"),
                r#"{"id": 2, "kind": "stats"}"#.to_string(),
            ],
            &config,
            &mut cache,
        );
        assert_eq!(
            warm[0].get("cached").and_then(Json::as_bool),
            Some(true),
            "the restarted server missed: {:?}",
            warm[0]
        );
        assert_eq!(
            cold[0].get("alloc").unwrap().pretty(),
            warm[0].get("alloc").unwrap().pretty(),
            "the reloaded document diverged from the computed one"
        );
        let stats = warm[1].get("stats").unwrap();
        assert_eq!(stats.get("disk_hits").and_then(Json::as_u64), Some(1));
        // A hash-only request at a new budget also works across the
        // restart: the module text itself was persisted.
        let hash = cold[0].get("hash").and_then(Json::as_str).unwrap();
        let mut cache = config.open_cache().unwrap();
        let line = format!(
            r#"{{"id": 3, "kind": "alloc", "hash": "{hash}", "nthd": 2, "nreg": 32, "strategy": "balanced"}}"#
        );
        let hashed = serve_script(&[line], &config, &mut cache);
        assert!(
            hashed[0].get("alloc").is_some(),
            "the persisted module was not reloaded: {:?}",
            hashed[0]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_degrade_to_cold_misses_in_service() {
        let dir = temp_cache_dir("corrupt");
        let config = ServeConfig {
            sweep: vec![8],
            cache_dir: Some(dir.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        };
        let mut cache = config.open_cache().unwrap();
        let cold = serve_script(&[alloc_line(1, 8, "balanced")], &config, &mut cache);
        drop(cache);
        // Flip bytes in every persisted response entry.
        let responses_dir = dir.join("responses");
        let mut clobbered = 0;
        for entry in std::fs::read_dir(&responses_dir).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, bytes).unwrap();
            clobbered += 1;
        }
        assert!(clobbered > 0, "nothing was persisted to corrupt");
        // The restarted server recomputes instead of erroring, counts
        // the corruption, and heals the entry on the write-through.
        let mut cache = config.open_cache().unwrap();
        let recomputed = serve_script(
            &[
                alloc_line(1, 8, "balanced"),
                r#"{"id": 2, "kind": "stats"}"#.to_string(),
            ],
            &config,
            &mut cache,
        );
        assert_eq!(
            recomputed[0].get("cached").and_then(Json::as_bool),
            Some(false),
            "a corrupt entry must read as a cold miss"
        );
        assert_eq!(
            cold[0].get("alloc").unwrap().pretty(),
            recomputed[0].get("alloc").unwrap().pretty()
        );
        let stats = recomputed[1].get("stats").unwrap();
        assert!(
            stats.get("disk_corrupt").and_then(Json::as_u64).unwrap() >= 1,
            "corruption went uncounted: {stats:?}"
        );
        // Third run: the healed entry serves warm again.
        let mut cache = config.open_cache().unwrap();
        let healed = serve_script(&[alloc_line(1, 8, "balanced")], &config, &mut cache);
        assert_eq!(healed[0].get("cached").and_then(Json::as_bool), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
