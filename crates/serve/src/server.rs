//! The resident server loop: bounded admission, wave dispatch over the
//! work-stealing pool, deterministic in-order responses.
//!
//! One reader thread parses and content-hashes each request line at
//! admission and feeds a **bounded** queue (a [`std::sync::mpsc`]
//! sync channel — a full queue back-pressures the transport instead of
//! buffering unboundedly). The dispatcher drains whatever is queued
//! into a *wave*, resolves cache hits serially in admission order,
//! shards the misses across the PR-5 work-stealing pool
//! ([`regbal_eval::pool::shard`]), then writes every response in
//! admission order. Because all cache mutation is serial and the
//! workers only race on each trajectory's [`std::sync::OnceLock`],
//! the response stream is byte-identical at any worker count.

use crate::cache::{Outcome, ServeCache, Trajectory};
use crate::proto::{self, AllocRequest, ProtoError, Request, Source};
use regbal_eval::{pool, Json};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::sync::atomic::AtomicU64;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads sharding each wave's misses (1 = serial; any
    /// count produces byte-identical responses).
    pub workers: usize,
    /// Admission-queue bound: requests in flight between the reader
    /// and the dispatcher before the transport blocks.
    pub queue_cap: usize,
    /// Response-cache capacity (finished outcomes).
    pub cache_cap: usize,
    /// Trajectory-cache capacity (loaded modules + descent vectors).
    pub trajectory_cap: usize,
    /// The register-file sizes the shared descents cover; requests at
    /// other sizes fall back to dedicated (still cached) runs.
    pub sweep: Vec<usize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 1,
            queue_cap: 256,
            cache_cap: 4096,
            trajectory_cap: 256,
            sweep: (32..=128).step_by(4).collect(),
        }
    }
}

/// What ended a serving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEnd {
    /// The input reached end-of-file.
    Eof,
    /// A `shutdown` request was acknowledged.
    Shutdown,
}

/// One flattened alloc unit of a wave, remembering which response line
/// (and which batch element) it belongs to.
struct Unit {
    request: Result<AllocRequest, ProtoError>,
    resolution: Resolution,
}

enum Resolution {
    /// Admission failed; the error is ready.
    Error,
    /// Served from the response cache.
    Hit(Outcome),
    /// Duplicate of an earlier unit in the same wave (by flat index);
    /// shares its computation and reports `cached: true`.
    Dup(usize),
    /// Needs computation on the pool (index into the compute list).
    Compute(usize),
    /// Resolved during admission without compute (load failures,
    /// unknown hashes).
    Ready(Outcome),
}

struct ComputeItem {
    trajectory: Arc<Trajectory>,
    nreg: usize,
    strategy: crate::oneshot::ServeStrategy,
}

fn alloc_response_body(unit: &Unit, outcomes: &[Outcome], units: &[Unit]) -> Vec<(String, Json)> {
    match &unit.request {
        Err(e) => vec![
            ("id".into(), e.id.clone()),
            ("error".into(), proto::error_json(&e.code, &e.message, e.at)),
        ],
        Ok(req) => {
            let (outcome, cached) = match &unit.resolution {
                Resolution::Hit(o) => (o.clone(), true),
                Resolution::Ready(o) => (o.clone(), false),
                Resolution::Compute(i) => (outcomes[*i].clone(), false),
                Resolution::Dup(flat) => match &units[*flat].resolution {
                    Resolution::Compute(i) => (outcomes[*i].clone(), true),
                    Resolution::Ready(o) => (o.clone(), true),
                    _ => unreachable!("a dup always points at a computing unit"),
                },
                Resolution::Error => unreachable!("errors carry no request"),
            };
            let mut body = vec![
                ("id".into(), req.id.clone()),
                ("hash".into(), Json::str(proto::hash_hex(req.hash))),
                ("cached".into(), Json::Bool(cached)),
            ];
            match outcome {
                Outcome::Doc(doc) => body.push(("alloc".into(), doc.as_ref().clone())),
                Outcome::Fail { code, message } => {
                    body.push(("error".into(), proto::error_json(&code, &message, None)));
                }
                Outcome::Parse { message, at } => {
                    let at = (at != (0, 0)).then_some(at);
                    body.push(("error".into(), proto::error_json("parse-error", &message, at)));
                }
            }
            body
        }
    }
}

/// Serves one connection: reads request lines from `input` until EOF
/// or a `shutdown` request, writing one response line per request (in
/// request order) to `output`. The cache outlives the call — pass the
/// same [`ServeCache`] again to keep serving warm.
///
/// # Errors
///
/// Only transport failures: an unreadable input or unwritable output.
/// Malformed requests are answered in-band and never end the loop.
pub fn serve_lines<R: Read + Send, W: Write>(
    input: R,
    output: W,
    config: &ServeConfig,
    cache: &mut ServeCache,
) -> std::io::Result<ServeEnd> {
    let (tx, rx) = sync_channel::<Result<Request, std::io::Error>>(config.queue_cap.max(1));
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let reader = BufReader::new(input);
            for line in reader.lines() {
                match line {
                    Ok(l) if l.trim().is_empty() => continue,
                    Ok(l) => {
                        let request = proto::parse_request(&l);
                        // Stop reading once a shutdown is forwarded:
                        // the dispatcher will ack and return, and this
                        // thread must not keep blocking on a transport
                        // the client may hold open.
                        let last = matches!(request, Request::Shutdown { .. });
                        if tx.send(Ok(request)).is_err() || last {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
        });
        let mut out = BufWriter::new(output);
        let end = dispatch(&rx, &mut out, config, cache);
        drop(rx); // unblock a reader waiting on a full queue
        end
    })
}

fn dispatch<W: Write>(
    rx: &Receiver<Result<Request, std::io::Error>>,
    out: &mut BufWriter<W>,
    config: &ServeConfig,
    cache: &mut ServeCache,
) -> std::io::Result<ServeEnd> {
    loop {
        // Block for the first request, then drain the queue into one
        // wave, stopping at the first control request so stats and
        // shutdown observe every earlier allocation.
        let first = match rx.recv() {
            Ok(job) => job?,
            Err(_) => return Ok(ServeEnd::Eof),
        };
        let mut wave = Vec::new();
        let mut control = None;
        match first {
            Request::Stats { .. } | Request::Shutdown { .. } => control = Some(first),
            other => {
                wave.push(other);
                while let Ok(job) = rx.try_recv() {
                    match job? {
                        c @ (Request::Stats { .. } | Request::Shutdown { .. }) => {
                            control = Some(c);
                            break;
                        }
                        other => wave.push(other),
                    }
                }
            }
        }

        serve_wave(&wave, out, config, cache)?;
        match control {
            Some(Request::Stats { id }) => {
                cache.count_request();
                let doc = proto::response(vec![
                    ("id".into(), id),
                    ("stats".into(), cache.stats_json()),
                ]);
                writeln!(out, "{}", doc.compact())?;
                out.flush()?;
            }
            Some(Request::Shutdown { id }) => {
                cache.count_request();
                let doc = proto::response(vec![
                    ("id".into(), id),
                    ("ok".into(), Json::Bool(true)),
                ]);
                writeln!(out, "{}", doc.compact())?;
                out.flush()?;
                return Ok(ServeEnd::Shutdown);
            }
            _ => {}
        }
    }
}

fn serve_wave<W: Write>(
    wave: &[Request],
    out: &mut BufWriter<W>,
    config: &ServeConfig,
    cache: &mut ServeCache,
) -> std::io::Result<()> {
    if wave.is_empty() {
        return Ok(());
    }
    // Flatten the wave into alloc units (batch elements inline), and
    // resolve each serially in admission order: cache hit, in-wave
    // duplicate, ready error, or a pool job.
    let mut units: Vec<Unit> = Vec::new();
    let mut compute: Vec<ComputeItem> = Vec::new();
    let mut wave_keys: std::collections::HashMap<crate::cache::ResponseKey, usize> =
        std::collections::HashMap::new();
    let mut spans: Vec<(Json, usize, bool)> = Vec::new(); // (batch id, #units, is_batch)
    for request in wave {
        cache.count_request();
        let (id, subs, is_batch) = match request {
            Request::Alloc(r) => (Json::Null, std::slice::from_ref(r), false),
            Request::Batch { id, requests } => (id.clone(), requests.as_slice(), true),
            Request::Stats { .. } | Request::Shutdown { .. } => {
                unreachable!("controls never enter a wave")
            }
        };
        spans.push((id, subs.len(), is_batch));
        for sub in subs {
            let resolution = match sub {
                Err(_) => Resolution::Error,
                Ok(req) => {
                    cache.count_alloc(req.hash);
                    let key = req.key();
                    if let Some(outcome) = cache.lookup(&key) {
                        Resolution::Hit(outcome)
                    } else if let Some(&flat) = wave_keys.get(&key) {
                        cache.counters.hits += 1;
                        cache.counters.misses -= 1; // the lookup above counted a miss
                        Resolution::Dup(flat)
                    } else {
                        wave_keys.insert(key, units.len());
                        let trajectory = match (&req.source, cache.trajectory(req.hash, req.nthd))
                        {
                            (_, Some(t)) => Some(t),
                            (Source::Text(text), None) => {
                                match cache.admit_trajectory(req.hash, req.nthd, text) {
                                    Ok(t) => Some(t),
                                    Err(outcome) => {
                                        cache.store(key, outcome.clone());
                                        units.push(Unit {
                                            request: sub.clone(),
                                            resolution: Resolution::Ready(outcome),
                                        });
                                        continue;
                                    }
                                }
                            }
                            (Source::HashOnly, None) => None,
                        };
                        match trajectory {
                            Some(trajectory) => {
                                compute.push(ComputeItem {
                                    trajectory,
                                    nreg: req.nreg,
                                    strategy: req.strategy,
                                });
                                Resolution::Compute(compute.len() - 1)
                            }
                            None => Resolution::Ready(Outcome::Fail {
                                code: "unknown-hash".into(),
                                message: format!(
                                    "no resident module for hash {} at nthd {} — resend with `func`",
                                    proto::hash_hex(req.hash),
                                    req.nthd
                                ),
                            }),
                        }
                    }
                }
            };
            units.push(Unit {
                request: sub.clone(),
                resolution,
            });
        }
    }

    // The parallel phase: shard the misses across the pool. Workers
    // race only on trajectory OnceLocks, so overlapping descents are
    // computed once and shared.
    let descents: &AtomicU64 = &cache.counters.descents.clone();
    let outcomes = pool::shard(compute.len(), config.workers, |i| {
        let item = &compute[i];
        item.trajectory.outcome(item.nreg, item.strategy, descents)
    });

    // Serial epilogue in admission order: publish fresh outcomes to
    // the cache, then frame and write each response line.
    for unit in &units {
        if let (Ok(req), Resolution::Compute(i)) = (&unit.request, &unit.resolution) {
            cache.store(req.key(), outcomes[*i].clone());
        }
    }
    let mut flat = 0usize;
    for (batch_id, count, is_batch) in spans {
        if is_batch {
            let subs: Vec<Json> = units[flat..flat + count]
                .iter()
                .map(|u| Json::Obj(alloc_response_body(u, &outcomes, &units)))
                .collect();
            let doc = proto::response(vec![
                ("id".into(), batch_id),
                ("batch".into(), Json::Arr(subs)),
            ]);
            writeln!(out, "{}", doc.compact())?;
        } else {
            let doc = proto::response(alloc_response_body(&units[flat], &outcomes, &units));
            writeln!(out, "{}", doc.compact())?;
        }
        flat += count;
    }
    out.flush()
}

/// Serves TCP connections on `addr`, one at a time, over one shared
/// persistent cache, until a connection issues `shutdown`. Announces
/// readiness with one `listening <addr>` line on `announce`.
///
/// # Errors
///
/// Bind or transport failures.
pub fn serve_tcp(
    addr: &str,
    config: &ServeConfig,
    announce: &mut dyn Write,
) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    writeln!(announce, "listening {}", listener.local_addr()?)?;
    announce.flush()?;
    let mut cache = ServeCache::new(
        config.cache_cap,
        config.trajectory_cap,
        config.sweep.clone(),
    );
    for stream in listener.incoming() {
        let stream = stream?;
        let input = stream.try_clone()?;
        if serve_lines(input, stream, config, &mut cache)? == ServeEnd::Shutdown {
            return Ok(());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "func t {\nbb0:\n v0 = mov 64\n v1 = load sram[v0+0]\n v1 = add v1, 1\n store sram[v0+0], v1\n iter_end\n halt\n}";

    fn fresh_cache(config: &ServeConfig) -> ServeCache {
        ServeCache::new(config.cache_cap, config.trajectory_cap, config.sweep.clone())
    }

    fn serve_script(lines: &[String], config: &ServeConfig, cache: &mut ServeCache) -> Vec<Json> {
        let input = lines.join("\n").into_bytes();
        let mut output = Vec::new();
        serve_lines(&input[..], &mut output, config, cache).unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| regbal_eval::json::parse(l).expect("every response line is JSON"))
            .collect()
    }

    fn alloc_line(id: u64, nreg: usize, strategy: &str) -> String {
        let func = Json::str(PROG).compact();
        format!(
            r#"{{"id": {id}, "kind": "alloc", "func": {func}, "nthd": 2, "nreg": {nreg}, "strategy": "{strategy}"}}"#
        )
    }

    #[test]
    fn repeated_requests_hit_the_cache_with_identical_documents() {
        let config = ServeConfig {
            sweep: vec![8, 32],
            ..ServeConfig::default()
        };
        let mut cache = fresh_cache(&config);
        let lines = vec![
            alloc_line(1, 8, "balanced"),
            alloc_line(2, 8, "balanced"),
            r#"{"id": 3, "kind": "stats"}"#.to_string(),
        ];
        let responses = serve_script(&lines, &config, &mut cache);
        assert_eq!(responses.len(), 3);
        for r in &responses[..2] {
            assert_eq!(r.get("schema").and_then(Json::as_str), Some("regbal-serve/1"));
            assert!(r.get("alloc").is_some(), "{r:?}");
        }
        assert_eq!(responses[1].get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            responses[0].get("alloc").unwrap().pretty(),
            responses[1].get("alloc").unwrap().pretty(),
            "a cache hit replays the identical document"
        );
        let stats = responses[2].get("stats").unwrap();
        assert_eq!(stats.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("misses").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("distinct_functions").and_then(Json::as_u64), Some(1));
        // The hash is echoed on both responses, identically.
        assert_eq!(responses[0].get("hash"), responses[1].get("hash"));
    }

    #[test]
    fn hash_only_requests_reuse_the_resident_trajectory() {
        let config = ServeConfig {
            sweep: vec![8, 32],
            ..ServeConfig::default()
        };
        let mut cache = fresh_cache(&config);
        let first = serve_script(&[alloc_line(1, 8, "balanced")], &config, &mut cache);
        let hash = first[0].get("hash").and_then(Json::as_str).unwrap().to_string();
        // A new budget for a known module, content-addressed: no func
        // text on the wire, served from the resident descent.
        let line = format!(
            r#"{{"id": 2, "kind": "alloc", "hash": "{hash}", "nthd": 2, "nreg": 32, "strategy": "balanced"}}"#
        );
        let responses = serve_script(
            &[line, r#"{"id": 3, "kind": "stats"}"#.to_string()],
            &config,
            &mut cache,
        );
        assert!(responses[0].get("alloc").is_some(), "{:?}", responses[0]);
        assert_eq!(responses[0].get("cached").and_then(Json::as_bool), Some(false));
        let stats = responses[1].get("stats").unwrap();
        assert_eq!(stats.get("descent_reuses").and_then(Json::as_u64), Some(1));
        // An unknown hash is a clean in-band error.
        let responses = serve_script(
            &[r#"{"id": 4, "kind": "alloc", "hash": "00000000000000ff"}"#.to_string()],
            &config,
            &mut cache,
        );
        let error = responses[0].get("error").unwrap();
        assert_eq!(error.get("code").and_then(Json::as_str), Some("unknown-hash"));
    }

    #[test]
    fn malformed_lines_answer_in_band_and_serving_continues() {
        let config = ServeConfig::default();
        let mut cache = fresh_cache(&config);
        let bad_func = Json::str("func t {\nbb0:\n v0 = frob 1\n}").compact();
        let lines = vec![
            "this is not json".to_string(),
            format!(r#"{{"id": 2, "kind": "alloc", "func": {bad_func}}}"#),
            alloc_line(3, 32, "balanced"),
        ];
        let responses = serve_script(&lines, &config, &mut cache);
        assert_eq!(responses.len(), 3);
        let e0 = responses[0].get("error").unwrap();
        assert_eq!(e0.get("code").and_then(Json::as_str), Some("bad-json"));
        let e1 = responses[1].get("error").unwrap();
        assert_eq!(e1.get("code").and_then(Json::as_str), Some("parse-error"));
        assert_eq!(e1.get("line").and_then(Json::as_u64), Some(3));
        assert!(e1.get("col").and_then(Json::as_u64).is_some());
        assert!(responses[2].get("alloc").is_some(), "the server kept serving");
    }

    #[test]
    fn infeasible_allocations_return_stable_codes_and_cache() {
        let config = ServeConfig {
            sweep: vec![4],
            ..ServeConfig::default()
        };
        let mut cache = fresh_cache(&config);
        let hungry = "func h {\nbb0:\n v0 = mov 1\n v1 = mov 2\n v2 = mov 3\n ctx\n v3 = add v0, v1\n v3 = add v3, v2\n store scratch[v3+0], v3\n halt\n}";
        let func = Json::str(hungry).compact();
        let line = |id: u64, strategy: &str| {
            format!(
                r#"{{"id": {id}, "kind": "alloc", "func": {func}, "nthd": 2, "nreg": 4, "strategy": "{strategy}"}}"#
            )
        };
        let responses = serve_script(
            &[line(1, "balanced"), line(2, "balanced"), line(3, "ladder")],
            &config,
            &mut cache,
        );
        let error = responses[0].get("error").unwrap();
        assert_eq!(error.get("code").and_then(Json::as_str), Some("infeasible"));
        assert!(error
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("cannot fit"));
        // Failures are cached too.
        assert_eq!(responses[1].get("cached").and_then(Json::as_bool), Some(true));
        // The ladder rescues the same module in the same session.
        assert!(responses[2].get("alloc").is_some());
    }

    #[test]
    fn batches_answer_as_one_line_and_share_the_wave() {
        let config = ServeConfig {
            workers: 4,
            sweep: vec![8, 32],
            ..ServeConfig::default()
        };
        let mut cache = fresh_cache(&config);
        let func = Json::str(PROG).compact();
        let batch = format!(
            r#"{{"id": 1, "kind": "batch", "requests": [{{"id": 2, "func": {func}, "nthd": 2, "nreg": 8}}, {{"id": 3, "func": {func}, "nthd": 2, "nreg": 32}}, {{"id": 4, "func": {func}, "nthd": 2, "nreg": 8}}, {{"id": 5}}]}}"#
        );
        let responses = serve_script(&[batch], &config, &mut cache);
        assert_eq!(responses.len(), 1);
        let subs = responses[0].get("batch").and_then(Json::as_arr).unwrap();
        assert_eq!(subs.len(), 4);
        assert!(subs[0].get("alloc").is_some());
        assert!(subs[1].get("alloc").is_some());
        // The duplicate element shares the first element's computation.
        assert_eq!(subs[2].get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            subs[0].get("alloc").unwrap().pretty(),
            subs[2].get("alloc").unwrap().pretty()
        );
        assert_eq!(
            subs[3].get("error").unwrap().get("code").and_then(Json::as_str),
            Some("bad-request")
        );
    }

    #[test]
    fn responses_are_byte_identical_at_any_worker_count() {
        let lines: Vec<String> = (0..6)
            .map(|i| alloc_line(i, [8, 32, 8][i as usize % 3], ["balanced", "ladder"][i as usize % 2]))
            .chain([r#"{"id": 99, "kind": "stats"}"#.to_string()])
            .collect();
        let mut transcripts = Vec::new();
        for workers in [1, 4] {
            let config = ServeConfig {
                workers,
                sweep: vec![8, 32],
                ..ServeConfig::default()
            };
            let mut cache = fresh_cache(&config);
            let input = lines.join("\n").into_bytes();
            let mut output = Vec::new();
            serve_lines(&input[..], &mut output, &config, &mut cache).unwrap();
            transcripts.push(output);
        }
        assert_eq!(
            transcripts[0], transcripts[1],
            "worker count leaked into the response bytes"
        );
    }

    #[test]
    fn shutdown_acknowledges_and_ends_the_loop() {
        let config = ServeConfig::default();
        let mut cache = fresh_cache(&config);
        let input = format!(
            "{}\n{}\n{}\n",
            alloc_line(1, 32, "balanced"),
            r#"{"id": 2, "kind": "shutdown"}"#,
            alloc_line(3, 32, "balanced"), // never served
        )
        .into_bytes();
        let mut output = Vec::new();
        let end = serve_lines(&input[..], &mut output, &config, &mut cache).unwrap();
        assert_eq!(end, ServeEnd::Shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 2, "{lines:?}");
        let ack = regbal_eval::json::parse(lines[1]).unwrap();
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn eviction_pressure_is_counted() {
        let config = ServeConfig {
            cache_cap: 1,
            sweep: vec![8, 32],
            ..ServeConfig::default()
        };
        let mut cache = fresh_cache(&config);
        // A control request after each alloc pins the wave boundaries,
        // so the eviction sequence is exact: store 8, store 32 (evict
        // 8), re-miss 8 (evict 32).
        let stats_line = r#"{"id": 0, "kind": "stats"}"#.to_string();
        let lines = vec![
            alloc_line(1, 8, "balanced"),
            stats_line.clone(),
            alloc_line(2, 32, "balanced"),
            stats_line.clone(),
            alloc_line(3, 8, "balanced"), // evicted above, recomputed
            stats_line,
        ];
        let responses = serve_script(&lines, &config, &mut cache);
        let stats = responses[5].get("stats").unwrap();
        assert_eq!(stats.get("evictions").and_then(Json::as_u64), Some(2));
        assert_eq!(stats.get("misses").and_then(Json::as_u64), Some(3));
        assert_eq!(stats.get("entries").and_then(Json::as_u64), Some(1));
        assert_eq!(responses[4].get("cached").and_then(Json::as_bool), Some(false));
    }
}
