//! The content-addressed on-disk cache behind `--cache-dir`.
//!
//! Two directories persist the in-memory tiers across server restarts:
//!
//! * `responses/` — one file per finished [`Outcome`], named by the
//!   response key `(content hash, Nthd, Nreg, strategy)`;
//! * `modules/` — one file per admitted module text, named by its
//!   content hash, so a restarted server can rebuild a trajectory for
//!   a content-addressed (`hash`-only) request it has never seen the
//!   text of in this process.
//!
//! Every entry is self-verifying: a `regbal-cache/1 <fnv16>` header
//! line carries the FNV-1a hash of the payload bytes, and module
//! payloads must additionally hash to their own file name. A corrupt,
//! truncated, or unreadable entry is **never** an error — it reads as
//! a cold miss (with a counter bump) and the next store overwrites it.
//! Writes go through a temp file + rename so a crashed server cannot
//! leave a torn entry under the final name; write failures are
//! reported to the caller as counters, not errors, because the disk
//! tier is an accelerator, not a source of truth (the engine is
//! deterministic, so everything on disk can be recomputed).
//!
//! With a byte cap attached ([`DiskStore::with_cap`]) the store garbage
//! collects itself: every entry carries an access stamp (bumped on
//! every verified load and every store), and after each store the
//! least-recently-accessed entries are deleted until the total payload
//! size fits under the cap — the same access-ordered policy as the
//! in-memory [`regbal_eval::Lru`], applied to files. Responses and
//! modules share one pool; an evicted entry simply reads as a miss
//! later (for modules, a subsequent hash-only request degrades to the
//! `unknown-hash` error, exactly as if the server had never seen the
//! text).
//!
//! A [`FaultPlan`] (see [`crate::faults`]) can be attached to inject
//! failed writes, torn (short) writes, failed renames, and corrupted
//! read frames — all at deterministic seeded call indices — which is
//! how the chaos gates prove the degradation story above actually
//! holds.

use crate::cache::{Outcome, ResponseKey};
use crate::faults::{FaultPlan, FaultSite};
use crate::proto;
use regbal_eval::{json, Json};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The header tag of every on-disk entry.
const ENTRY_SCHEMA: &str = "regbal-cache/1";

/// What a disk probe found.
#[derive(Debug)]
pub enum DiskRead<T> {
    /// A verified entry.
    Hit(T),
    /// No entry under that name.
    Miss,
    /// An entry existed but failed verification (truncated, corrupt,
    /// unreadable, or semantically malformed). Treated as a miss.
    Corrupt,
}

/// Access-ordered GC bookkeeping for a capped store. One entry per
/// live file; stamps are a monotonic logical clock bumped on every
/// load hit and store, so eviction order is access order, not write
/// order.
#[derive(Debug, Default)]
struct GcState {
    cap: u64,
    total: u64,
    tick: u64,
    /// `(path, payload bytes, access stamp)` per live entry.
    entries: Vec<(PathBuf, u64, u64)>,
    evictions: u64,
    evicted_bytes: u64,
}

impl GcState {
    fn touch(&mut self, path: &Path) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.iter_mut().find(|(p, _, _)| p == path) {
            entry.2 = tick;
        }
    }

    fn record(&mut self, path: &Path, bytes: u64) {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.iter_mut().find(|(p, _, _)| p == path) {
            Some(entry) => {
                self.total = self.total - entry.1 + bytes;
                entry.1 = bytes;
                entry.2 = tick;
            }
            None => {
                self.total += bytes;
                self.entries.push((path.to_path_buf(), bytes, tick));
            }
        }
    }

    /// Deletes least-recently-accessed entries until the total fits
    /// under the cap, never evicting `keep` (the entry just written:
    /// evicting it would turn every store into a self-defeating miss).
    fn collect(&mut self, keep: &Path) {
        while self.total > self.cap {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, (p, _, _))| p != keep)
                .min_by_key(|(_, (p, _, stamp))| (*stamp, p.clone()))
                .map(|(i, _)| i);
            let Some(i) = victim else {
                return; // only the just-written entry remains
            };
            let (path, bytes, _) = self.entries.swap_remove(i);
            let _ = std::fs::remove_file(&path);
            self.total -= bytes;
            self.evictions += 1;
            self.evicted_bytes += bytes;
        }
    }
}

/// A content-addressed cache directory. All methods are infallible by
/// design: failures degrade to misses or dropped writes.
#[derive(Debug)]
pub struct DiskStore {
    responses: PathBuf,
    modules: PathBuf,
    faults: Option<Arc<FaultPlan>>,
    gc: Option<Mutex<GcState>>,
}

/// The file stem of a response key: `<hash16>-<nthd>-<nreg>-<strategy>`.
fn response_stem(key: &ResponseKey) -> String {
    let (hash, nthd, nreg, strategy) = key;
    format!(
        "{}-{}-{}-{}",
        proto::hash_hex(*hash),
        nthd,
        nreg,
        strategy.name()
    )
}

/// Frames `payload` under the self-verifying header.
fn frame(payload: &str) -> String {
    format!(
        "{ENTRY_SCHEMA} {}\n{payload}",
        proto::hash_hex(proto::content_hash(payload))
    )
}

/// Unframes an entry: header check, then checksum check. `None` means
/// corrupt/truncated.
fn unframe(text: &str) -> Option<&str> {
    let (header, payload) = text.split_once('\n')?;
    let (tag, checksum) = header.split_once(' ')?;
    if tag != ENTRY_SCHEMA {
        return None;
    }
    let expected = proto::parse_hash(checksum)?;
    (proto::content_hash(payload) == expected).then_some(payload)
}

/// Writes `text` to `path` atomically (temp file + rename). Returns
/// whether the write landed intact. The three disk-write fault sites
/// are injected here: an outright failure, a torn (short) write that
/// still reaches the final name, and a failed rename.
fn write_atomic(path: &Path, text: &str, faults: Option<&FaultPlan>) -> bool {
    if let Some(plan) = faults {
        if plan.fire(FaultSite::DiskWriteFail) {
            return false;
        }
    }
    let Some(dir) = path.parent() else {
        return false;
    };
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    ));
    let torn = faults.is_some_and(|plan| plan.fire(FaultSite::DiskWriteShort));
    let bytes = if torn {
        // A torn write: half the frame reaches the final name. The
        // read path's checksum must turn this into a cold miss.
        &text.as_bytes()[..text.len() / 2]
    } else {
        text.as_bytes()
    };
    if std::fs::write(&tmp, bytes).is_err() {
        return false;
    }
    if faults.is_some_and(|plan| plan.fire(FaultSite::DiskRenameFail)) {
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    if std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    !torn
}

/// Flips one byte of a read frame when the read-corruption fault
/// fires, so the *checksum path* (not the fault plane) catches it.
fn maybe_corrupt(text: String, faults: Option<&FaultPlan>) -> String {
    match faults {
        Some(plan) if !text.is_empty() && plan.fire(FaultSite::DiskReadCorrupt) => {
            let mut bytes = text.into_bytes();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            String::from_utf8_lossy(&bytes).into_owned()
        }
        _ => text,
    }
}

/// The JSON envelope of one persisted outcome.
fn outcome_json(outcome: &Outcome) -> Json {
    match outcome {
        Outcome::Doc(doc) => Json::Obj(vec![
            ("kind".into(), Json::str("doc")),
            ("alloc".into(), doc.as_ref().clone()),
        ]),
        Outcome::Fail { code, message } => Json::Obj(vec![
            ("kind".into(), Json::str("fail")),
            ("code".into(), Json::str(code.as_str())),
            ("message".into(), Json::str(message.as_str())),
        ]),
        Outcome::Parse { message, at } => Json::Obj(vec![
            ("kind".into(), Json::str("parse")),
            ("message".into(), Json::str(message.as_str())),
            ("line".into(), Json::uint(at.0 as u64)),
            ("col".into(), Json::uint(at.1 as u64)),
        ]),
    }
}

/// Parses a persisted outcome envelope back. `None` on any shape
/// mismatch (treated as corruption by the caller).
fn outcome_from_json(doc: &Json) -> Option<Outcome> {
    match doc.get("kind").and_then(Json::as_str)? {
        "doc" => Some(Outcome::Doc(Arc::new(doc.get("alloc")?.clone()))),
        "fail" => Some(Outcome::Fail {
            code: doc.get("code").and_then(Json::as_str)?.to_string(),
            message: doc.get("message").and_then(Json::as_str)?.to_string(),
        }),
        "parse" => Some(Outcome::Parse {
            message: doc.get("message").and_then(Json::as_str)?.to_string(),
            at: (
                doc.get("line").and_then(Json::as_u64)? as usize,
                doc.get("col").and_then(Json::as_u64)? as usize,
            ),
        }),
        _ => None,
    }
}

impl DiskStore {
    /// Opens (creating if needed) the cache directory layout under
    /// `dir`.
    ///
    /// # Errors
    ///
    /// Only directory-creation failures — the one disk fault that is
    /// fatal, because it means no entry could ever be written.
    pub fn open(dir: &Path) -> std::io::Result<DiskStore> {
        let responses = dir.join("responses");
        let modules = dir.join("modules");
        std::fs::create_dir_all(&responses)?;
        std::fs::create_dir_all(&modules)?;
        Ok(DiskStore {
            responses,
            modules,
            faults: None,
            gc: None,
        })
    }

    /// Attaches the fault plan: every disk write and read consults it.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> DiskStore {
        self.faults = Some(plan);
        self
    }

    /// Caps the store at `cap` payload bytes with access-ordered GC.
    /// Entries already on disk are inventoried (oldest-modified first,
    /// so pre-existing files are the first eviction candidates) and an
    /// over-full directory is collected immediately.
    pub fn with_cap(mut self, cap: u64) -> DiskStore {
        let mut gc = GcState {
            cap,
            ..GcState::default()
        };
        // Inventory both tiers, ordered by mtime (ties broken by path,
        // so the seeding is deterministic given identical timestamps).
        let mut found: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
        for dir in [&self.responses, &self.modules] {
            let Ok(read) = std::fs::read_dir(dir) else {
                continue;
            };
            for entry in read.flatten() {
                let Ok(meta) = entry.metadata() else {
                    continue;
                };
                if !meta.is_file() {
                    continue;
                }
                let modified = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                found.push((entry.path(), meta.len(), modified));
            }
        }
        found.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        for (path, bytes, _) in found {
            gc.record(&path, bytes);
        }
        gc.collect(Path::new(""));
        self.gc = Some(Mutex::new(gc));
        self
    }

    /// Total payload bytes the capped store currently tracks (0 when
    /// uncapped).
    pub fn bytes(&self) -> u64 {
        self.gc
            .as_ref()
            .map(|gc| gc.lock().expect("gc lock poisoned").total)
            .unwrap_or(0)
    }

    /// `(entries evicted, bytes evicted)` by the cap so far.
    pub fn gc_counters(&self) -> (u64, u64) {
        self.gc
            .as_ref()
            .map(|gc| {
                let gc = gc.lock().expect("gc lock poisoned");
                (gc.evictions, gc.evicted_bytes)
            })
            .unwrap_or((0, 0))
    }

    fn note_hit(&self, path: &Path) {
        if let Some(gc) = &self.gc {
            gc.lock().expect("gc lock poisoned").touch(path);
        }
    }

    fn note_store(&self, path: &Path, bytes: u64) {
        if let Some(gc) = &self.gc {
            let mut gc = gc.lock().expect("gc lock poisoned");
            gc.record(path, bytes);
            gc.collect(path);
        }
    }

    /// Probes the response tier for `key`.
    pub fn load_response(&self, key: &ResponseKey) -> DiskRead<Outcome> {
        let path = self.responses.join(format!("{}.json", response_stem(key)));
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return DiskRead::Miss,
            Err(_) => return DiskRead::Corrupt,
        };
        let text = maybe_corrupt(text, self.faults.as_deref());
        let Some(payload) = unframe(&text) else {
            return DiskRead::Corrupt;
        };
        let Ok(doc) = json::parse(payload) else {
            return DiskRead::Corrupt;
        };
        match outcome_from_json(&doc) {
            Some(outcome) => {
                self.note_hit(&path);
                DiskRead::Hit(outcome)
            }
            None => DiskRead::Corrupt,
        }
    }

    /// Persists an outcome under `key`. Returns whether the write
    /// landed (a `false` is a counter bump, never an error).
    pub fn store_response(&self, key: &ResponseKey, outcome: &Outcome) -> bool {
        let path = self.responses.join(format!("{}.json", response_stem(key)));
        let text = frame(&outcome_json(outcome).compact());
        let landed = write_atomic(&path, &text, self.faults.as_deref());
        if landed {
            self.note_store(&path, text.len() as u64);
        }
        landed
    }

    /// Probes the module tier for `hash`. A hit is doubly verified:
    /// the framed checksum *and* the payload's own content hash must
    /// both match.
    pub fn load_module(&self, hash: u64) -> DiskRead<String> {
        let path = self.modules.join(format!("{}.rba", proto::hash_hex(hash)));
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return DiskRead::Miss,
            Err(_) => return DiskRead::Corrupt,
        };
        let text = maybe_corrupt(text, self.faults.as_deref());
        match unframe(&text) {
            Some(payload) if proto::content_hash(payload) == hash => {
                self.note_hit(&path);
                DiskRead::Hit(payload.to_string())
            }
            Some(_) => DiskRead::Corrupt,
            None => DiskRead::Corrupt,
        }
    }

    /// Persists a module text under its content hash.
    pub fn store_module(&self, hash: u64, text: &str) -> bool {
        let path = self.modules.join(format!("{}.rba", proto::hash_hex(hash)));
        let framed = frame(text);
        let landed = write_atomic(&path, &framed, self.faults.as_deref());
        if landed {
            self.note_store(&path, framed.len() as u64);
        }
        landed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (PathBuf, DiskStore) {
        let dir = std::env::temp_dir().join(format!(
            "regbal-store-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        (dir, store)
    }

    fn key(n: u64) -> ResponseKey {
        (n, 2, 32, crate::oneshot::ServeStrategy::Balanced)
    }

    fn fail_outcome() -> Outcome {
        Outcome::Fail {
            code: "infeasible".into(),
            message: "cannot fit".into(),
        }
    }

    #[test]
    fn outcomes_round_trip_through_disk() {
        let (dir, store) = temp_store("roundtrip");
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("regbal-alloc/1")),
            ("nreg".into(), Json::uint(32)),
        ]);
        let outcomes = [
            Outcome::Doc(Arc::new(doc.clone())),
            Outcome::Fail {
                code: "infeasible".into(),
                message: "cannot fit".into(),
            },
            Outcome::Parse {
                message: "bad token".into(),
                at: (3, 7),
            },
        ];
        for (i, outcome) in outcomes.iter().enumerate() {
            let k = key(i as u64);
            assert!(store.store_response(&k, outcome));
            match store.load_response(&k) {
                DiskRead::Hit(back) => match (outcome, &back) {
                    (Outcome::Doc(a), Outcome::Doc(b)) => {
                        assert_eq!(a.pretty(), b.pretty(), "documents replay byte-identically")
                    }
                    (
                        Outcome::Fail { code, message },
                        Outcome::Fail {
                            code: c,
                            message: m,
                        },
                    ) => assert_eq!((code, message), (c, m)),
                    (Outcome::Parse { message, at }, Outcome::Parse { message: m, at: a }) => {
                        assert_eq!((message, at), (m, a))
                    }
                    (want, got) => panic!("kind changed on disk: {want:?} -> {got:?}"),
                },
                other => panic!("expected a hit: {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn modules_round_trip_and_verify_their_own_hash() {
        let (dir, store) = temp_store("modules");
        let text = "func t {\nbb0:\n halt\n}";
        let hash = proto::content_hash(text);
        assert!(store.store_module(hash, text));
        match store.load_module(hash) {
            DiskRead::Hit(back) => assert_eq!(back, text),
            other => panic!("expected a hit: {other:?}"),
        }
        assert!(matches!(store.load_module(hash ^ 1), DiskRead::Miss));
        // A module filed under the wrong hash is corruption, not a hit.
        assert!(store.store_module(hash ^ 1, text));
        assert!(matches!(store.load_module(hash ^ 1), DiskRead::Corrupt));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_entries_read_as_cold_misses() {
        let (dir, store) = temp_store("corrupt");
        let k = key(9);
        let outcome = fail_outcome();
        assert!(store.store_response(&k, &outcome));
        let path = dir
            .join("responses")
            .join(format!("{}.json", response_stem(&k)));

        // Truncation: drop the tail of the payload.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 4]).unwrap();
        assert!(matches!(store.load_response(&k), DiskRead::Corrupt));

        // Bit-flip: keep the length, damage one payload byte.
        let mut bytes = full.clone().into_bytes();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(store.load_response(&k), DiskRead::Corrupt));

        // Garbage header.
        std::fs::write(&path, "not-a-cache-entry\n{}").unwrap();
        assert!(matches!(store.load_response(&k), DiskRead::Corrupt));

        // A checksum-valid entry whose payload is not an outcome.
        std::fs::write(&path, frame("{\"kind\": \"mystery\"}")).unwrap();
        assert!(matches!(store.load_response(&k), DiskRead::Corrupt));

        // And a rewrite heals it.
        assert!(store.store_response(&k, &outcome));
        assert!(matches!(store.load_response(&k), DiskRead::Hit(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The satellite truncation sweep: every proper prefix of a
    /// persisted entry must read as `Corrupt` or `Miss` — never a hit,
    /// never a wrong document, never a panic.
    #[test]
    fn every_truncation_prefix_degrades_cleanly() {
        let (dir, store) = temp_store("prefixes");
        let k = key(5);
        assert!(store.store_response(&k, &fail_outcome()));
        let path = dir
            .join("responses")
            .join(format!("{}.json", response_stem(&k)));
        let full = std::fs::read(&path).unwrap();
        for len in 0..full.len() {
            std::fs::write(&path, &full[..len]).unwrap();
            match store.load_response(&k) {
                DiskRead::Corrupt | DiskRead::Miss => {}
                DiskRead::Hit(_) => {
                    panic!("a {len}-byte prefix of a {}-byte entry verified", full.len())
                }
            }
        }
        // Same sweep on the module tier, where the payload must also
        // hash to the file name.
        let text = "func t {\nbb0:\n halt\n}";
        let hash = proto::content_hash(text);
        assert!(store.store_module(hash, text));
        let mpath = dir.join("modules").join(format!("{}.rba", proto::hash_hex(hash)));
        let mfull = std::fs::read(&mpath).unwrap();
        for len in 0..mfull.len() {
            std::fs::write(&mpath, &mfull[..len]).unwrap();
            assert!(
                !matches!(store.load_module(hash), DiskRead::Hit(_)),
                "a {len}-byte module prefix verified"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_faults_fail_writes_and_reads_stay_clean() {
        use crate::faults::{FaultPlan, FaultSite};
        let (dir, store) = temp_store("faults");
        let plan = Arc::new(
            FaultPlan::seeded(1)
                .with_exact(FaultSite::DiskWriteFail, &[0])
                .with_exact(FaultSite::DiskWriteShort, &[1]) // 2nd write passing the fail gate
                .with_exact(FaultSite::DiskRenameFail, &[2]),
        );
        let store = store.with_faults(plan.clone());
        // Write 0: outright failure, nothing on disk.
        assert!(!store.store_response(&key(0), &fail_outcome()));
        assert!(matches!(store.load_response(&key(0)), DiskRead::Miss));
        // Write 1: lands intact (no fault fires at its indices).
        assert!(store.store_response(&key(1), &fail_outcome()));
        // Write 2: torn — reported failed, and the torn frame on disk
        // reads as corruption, not as a hit.
        assert!(!store.store_response(&key(2), &fail_outcome()));
        assert!(matches!(store.load_response(&key(2)), DiskRead::Corrupt));
        // Write 3: rename fails; no final entry, temp cleaned up.
        assert!(!store.store_response(&key(3), &fail_outcome()));
        assert!(matches!(store.load_response(&key(3)), DiskRead::Miss));
        let leftovers: Vec<_> = std::fs::read_dir(dir.join("responses"))
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        assert_eq!(plan.fired_total(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_read_corruption_degrades_to_a_miss_and_heals() {
        use crate::faults::{FaultPlan, FaultSite};
        let (dir, store) = temp_store("readfault");
        let plan = Arc::new(FaultPlan::seeded(1).with_exact(FaultSite::DiskReadCorrupt, &[0]));
        let store = store.with_faults(plan);
        assert!(store.store_response(&key(0), &fail_outcome()));
        // Read 0: the injected flip must fail the checksum.
        assert!(matches!(store.load_response(&key(0)), DiskRead::Corrupt));
        // Read 1: the file itself was never touched — it still verifies.
        assert!(matches!(store.load_response(&key(0)), DiskRead::Hit(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_cap_evicts_in_access_order() {
        let (dir, store) = temp_store("gc");
        // Measure one entry, then cap the store at three of them.
        assert!(store.store_response(&key(0), &fail_outcome()));
        let entry_bytes = store
            .load_response(&key(0))
            .hit_size(&dir, &key(0));
        let store = DiskStore::open(&dir).unwrap().with_cap(entry_bytes * 3);
        // Keys 1..=3 fill the cap (key 0 predates the cap and is the
        // oldest by inventory order — the first victim).
        for n in 1..=3u64 {
            assert!(store.store_response(&key(n), &fail_outcome()));
        }
        assert!(matches!(store.load_response(&key(0)), DiskRead::Miss));
        // Touch key 1 so key 2 becomes the least recently accessed.
        assert!(matches!(store.load_response(&key(1)), DiskRead::Hit(_)));
        assert!(store.store_response(&key(4), &fail_outcome()));
        assert!(matches!(store.load_response(&key(2)), DiskRead::Miss));
        assert!(matches!(store.load_response(&key(1)), DiskRead::Hit(_)));
        assert!(matches!(store.load_response(&key(3)), DiskRead::Hit(_)));
        assert!(matches!(store.load_response(&key(4)), DiskRead::Hit(_)));
        let (evictions, evicted_bytes) = store.gc_counters();
        assert_eq!(evictions, 2);
        assert_eq!(evicted_bytes, entry_bytes * 2);
        assert!(store.bytes() <= entry_bytes * 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    impl DiskRead<Outcome> {
        /// Test helper: the on-disk size of the hit entry.
        fn hit_size(&self, dir: &Path, k: &ResponseKey) -> u64 {
            assert!(matches!(self, DiskRead::Hit(_)));
            std::fs::metadata(
                dir.join("responses")
                    .join(format!("{}.json", response_stem(k))),
            )
            .unwrap()
            .len()
        }
    }
}
