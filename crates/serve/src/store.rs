//! The content-addressed on-disk cache behind `--cache-dir`.
//!
//! Two directories persist the in-memory tiers across server restarts:
//!
//! * `responses/` — one file per finished [`Outcome`], named by the
//!   response key `(content hash, Nthd, Nreg, strategy)`;
//! * `modules/` — one file per admitted module text, named by its
//!   content hash, so a restarted server can rebuild a trajectory for
//!   a content-addressed (`hash`-only) request it has never seen the
//!   text of in this process.
//!
//! Every entry is self-verifying: a `regbal-cache/1 <fnv16>` header
//! line carries the FNV-1a hash of the payload bytes, and module
//! payloads must additionally hash to their own file name. A corrupt,
//! truncated, or unreadable entry is **never** an error — it reads as
//! a cold miss (with a counter bump) and the next store overwrites it.
//! Writes go through a temp file + rename so a crashed server cannot
//! leave a torn entry under the final name; write failures are
//! reported to the caller as counters, not errors, because the disk
//! tier is an accelerator, not a source of truth (the engine is
//! deterministic, so everything on disk can be recomputed).

use crate::cache::{Outcome, ResponseKey};
use crate::proto;
use regbal_eval::{json, Json};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The header tag of every on-disk entry.
const ENTRY_SCHEMA: &str = "regbal-cache/1";

/// What a disk probe found.
#[derive(Debug)]
pub enum DiskRead<T> {
    /// A verified entry.
    Hit(T),
    /// No entry under that name.
    Miss,
    /// An entry existed but failed verification (truncated, corrupt,
    /// unreadable, or semantically malformed). Treated as a miss.
    Corrupt,
}

/// A content-addressed cache directory. All methods are infallible by
/// design: failures degrade to misses or dropped writes.
#[derive(Debug)]
pub struct DiskStore {
    responses: PathBuf,
    modules: PathBuf,
}

/// The file stem of a response key: `<hash16>-<nthd>-<nreg>-<strategy>`.
fn response_stem(key: &ResponseKey) -> String {
    let (hash, nthd, nreg, strategy) = key;
    format!(
        "{}-{}-{}-{}",
        proto::hash_hex(*hash),
        nthd,
        nreg,
        strategy.name()
    )
}

/// Frames `payload` under the self-verifying header.
fn frame(payload: &str) -> String {
    format!(
        "{ENTRY_SCHEMA} {}\n{payload}",
        proto::hash_hex(proto::content_hash(payload))
    )
}

/// Unframes an entry: header check, then checksum check. `None` means
/// corrupt/truncated.
fn unframe(text: &str) -> Option<&str> {
    let (header, payload) = text.split_once('\n')?;
    let (tag, checksum) = header.split_once(' ')?;
    if tag != ENTRY_SCHEMA {
        return None;
    }
    let expected = proto::parse_hash(checksum)?;
    (proto::content_hash(payload) == expected).then_some(payload)
}

/// Writes `text` to `path` atomically (temp file + rename). Returns
/// whether the write landed.
fn write_atomic(path: &Path, text: &str) -> bool {
    let Some(dir) = path.parent() else {
        return false;
    };
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    ));
    if std::fs::write(&tmp, text).is_err() {
        return false;
    }
    if std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    true
}

/// The JSON envelope of one persisted outcome.
fn outcome_json(outcome: &Outcome) -> Json {
    match outcome {
        Outcome::Doc(doc) => Json::Obj(vec![
            ("kind".into(), Json::str("doc")),
            ("alloc".into(), doc.as_ref().clone()),
        ]),
        Outcome::Fail { code, message } => Json::Obj(vec![
            ("kind".into(), Json::str("fail")),
            ("code".into(), Json::str(code.as_str())),
            ("message".into(), Json::str(message.as_str())),
        ]),
        Outcome::Parse { message, at } => Json::Obj(vec![
            ("kind".into(), Json::str("parse")),
            ("message".into(), Json::str(message.as_str())),
            ("line".into(), Json::uint(at.0 as u64)),
            ("col".into(), Json::uint(at.1 as u64)),
        ]),
    }
}

/// Parses a persisted outcome envelope back. `None` on any shape
/// mismatch (treated as corruption by the caller).
fn outcome_from_json(doc: &Json) -> Option<Outcome> {
    match doc.get("kind").and_then(Json::as_str)? {
        "doc" => Some(Outcome::Doc(Arc::new(doc.get("alloc")?.clone()))),
        "fail" => Some(Outcome::Fail {
            code: doc.get("code").and_then(Json::as_str)?.to_string(),
            message: doc.get("message").and_then(Json::as_str)?.to_string(),
        }),
        "parse" => Some(Outcome::Parse {
            message: doc.get("message").and_then(Json::as_str)?.to_string(),
            at: (
                doc.get("line").and_then(Json::as_u64)? as usize,
                doc.get("col").and_then(Json::as_u64)? as usize,
            ),
        }),
        _ => None,
    }
}

impl DiskStore {
    /// Opens (creating if needed) the cache directory layout under
    /// `dir`.
    ///
    /// # Errors
    ///
    /// Only directory-creation failures — the one disk fault that is
    /// fatal, because it means no entry could ever be written.
    pub fn open(dir: &Path) -> std::io::Result<DiskStore> {
        let responses = dir.join("responses");
        let modules = dir.join("modules");
        std::fs::create_dir_all(&responses)?;
        std::fs::create_dir_all(&modules)?;
        Ok(DiskStore { responses, modules })
    }

    /// Probes the response tier for `key`.
    pub fn load_response(&self, key: &ResponseKey) -> DiskRead<Outcome> {
        let path = self.responses.join(format!("{}.json", response_stem(key)));
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return DiskRead::Miss,
            Err(_) => return DiskRead::Corrupt,
        };
        let Some(payload) = unframe(&text) else {
            return DiskRead::Corrupt;
        };
        let Ok(doc) = json::parse(payload) else {
            return DiskRead::Corrupt;
        };
        match outcome_from_json(&doc) {
            Some(outcome) => DiskRead::Hit(outcome),
            None => DiskRead::Corrupt,
        }
    }

    /// Persists an outcome under `key`. Returns whether the write
    /// landed (a `false` is a counter bump, never an error).
    pub fn store_response(&self, key: &ResponseKey, outcome: &Outcome) -> bool {
        let path = self.responses.join(format!("{}.json", response_stem(key)));
        write_atomic(&path, &frame(&outcome_json(outcome).compact()))
    }

    /// Probes the module tier for `hash`. A hit is doubly verified:
    /// the framed checksum *and* the payload's own content hash must
    /// both match.
    pub fn load_module(&self, hash: u64) -> DiskRead<String> {
        let path = self.modules.join(format!("{}.rba", proto::hash_hex(hash)));
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return DiskRead::Miss,
            Err(_) => return DiskRead::Corrupt,
        };
        match unframe(&text) {
            Some(payload) if proto::content_hash(payload) == hash => {
                DiskRead::Hit(payload.to_string())
            }
            Some(_) => DiskRead::Corrupt,
            None => DiskRead::Corrupt,
        }
    }

    /// Persists a module text under its content hash.
    pub fn store_module(&self, hash: u64, text: &str) -> bool {
        let path = self.modules.join(format!("{}.rba", proto::hash_hex(hash)));
        write_atomic(&path, &frame(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (PathBuf, DiskStore) {
        let dir = std::env::temp_dir().join(format!(
            "regbal-store-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        (dir, store)
    }

    fn key(n: u64) -> ResponseKey {
        (n, 2, 32, crate::oneshot::ServeStrategy::Balanced)
    }

    #[test]
    fn outcomes_round_trip_through_disk() {
        let (dir, store) = temp_store("roundtrip");
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("regbal-alloc/1")),
            ("nreg".into(), Json::uint(32)),
        ]);
        let outcomes = [
            Outcome::Doc(Arc::new(doc.clone())),
            Outcome::Fail {
                code: "infeasible".into(),
                message: "cannot fit".into(),
            },
            Outcome::Parse {
                message: "bad token".into(),
                at: (3, 7),
            },
        ];
        for (i, outcome) in outcomes.iter().enumerate() {
            let k = key(i as u64);
            assert!(store.store_response(&k, outcome));
            match store.load_response(&k) {
                DiskRead::Hit(back) => match (outcome, &back) {
                    (Outcome::Doc(a), Outcome::Doc(b)) => {
                        assert_eq!(a.pretty(), b.pretty(), "documents replay byte-identically")
                    }
                    (
                        Outcome::Fail { code, message },
                        Outcome::Fail {
                            code: c,
                            message: m,
                        },
                    ) => assert_eq!((code, message), (c, m)),
                    (Outcome::Parse { message, at }, Outcome::Parse { message: m, at: a }) => {
                        assert_eq!((message, at), (m, a))
                    }
                    (want, got) => panic!("kind changed on disk: {want:?} -> {got:?}"),
                },
                other => panic!("expected a hit: {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn modules_round_trip_and_verify_their_own_hash() {
        let (dir, store) = temp_store("modules");
        let text = "func t {\nbb0:\n halt\n}";
        let hash = proto::content_hash(text);
        assert!(store.store_module(hash, text));
        match store.load_module(hash) {
            DiskRead::Hit(back) => assert_eq!(back, text),
            other => panic!("expected a hit: {other:?}"),
        }
        assert!(matches!(store.load_module(hash ^ 1), DiskRead::Miss));
        // A module filed under the wrong hash is corruption, not a hit.
        assert!(store.store_module(hash ^ 1, text));
        assert!(matches!(store.load_module(hash ^ 1), DiskRead::Corrupt));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_entries_read_as_cold_misses() {
        let (dir, store) = temp_store("corrupt");
        let k = key(9);
        let outcome = Outcome::Fail {
            code: "infeasible".into(),
            message: "cannot fit".into(),
        };
        assert!(store.store_response(&k, &outcome));
        let path = dir
            .join("responses")
            .join(format!("{}.json", response_stem(&k)));

        // Truncation: drop the tail of the payload.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 4]).unwrap();
        assert!(matches!(store.load_response(&k), DiskRead::Corrupt));

        // Bit-flip: keep the length, damage one payload byte.
        let mut bytes = full.clone().into_bytes();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(store.load_response(&k), DiskRead::Corrupt));

        // Garbage header.
        std::fs::write(&path, "not-a-cache-entry\n{}").unwrap();
        assert!(matches!(store.load_response(&k), DiskRead::Corrupt));

        // A checksum-valid entry whose payload is not an outcome.
        std::fs::write(&path, frame("{\"kind\": \"mystery\"}")).unwrap();
        assert!(matches!(store.load_response(&k), DiskRead::Corrupt));

        // And a rewrite heals it.
        assert!(store.store_response(&k, &outcome));
        assert!(matches!(store.load_response(&k), DiskRead::Hit(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
