//! The deterministic, seeded fault-injection plane.
//!
//! A [`FaultPlan`] is threaded behind a cheap `Option<Arc<_>>` into the
//! disk store, the server's reader and dispatcher loops, and the chaos
//! replay client. Each injection point names a [`FaultSite`]; on every
//! pass through the point the component asks [`FaultPlan::fire`], which
//! decides **deterministically** from `(seed, site, call index)` whether
//! the fault triggers. Two trigger mechanisms compose:
//!
//! * a per-mille *rate* per site, hashed from the seed and the site's
//!   own monotonically increasing call counter (so a given seed always
//!   faults the same calls, in the same order, no matter the wall
//!   clock); and
//! * an *exact* call-index list per site, for tests that need, say,
//!   "fail the first disk write and only the first".
//!
//! With no plan attached (`None`), every injection point is a single
//! branch on an `Option` — the hardened server runs byte-identically to
//! the unhardened one, which the CI replay gates keep proving.
//!
//! The plan is intentionally *not* a model of real failure statistics;
//! it is a reproducible adversary. The invariant it exists to enforce
//! end-to-end (see the chaos replay harness in [`crate::replay`]): under
//! any seeded plan, every admitted request is answered — a document or
//! a structured in-band error — and the server never deadlocks or exits
//! non-zero for a client-side fault.

use std::sync::atomic::{AtomicU64, Ordering};

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A disk write that fails before any byte lands.
    DiskWriteFail,
    /// A disk write that lands truncated (a torn entry under the final
    /// name; the next read must see it as corrupt, never as a hit).
    DiskWriteShort,
    /// The temp-file rename that makes a write atomic fails; the temp
    /// file is cleaned up and the write is reported failed.
    DiskRenameFail,
    /// A disk read returns frame bytes with one byte flipped, so the
    /// checksum path — not this module — must catch the corruption.
    DiskReadCorrupt,
    /// The client vanishes mid-line (used by the chaos replay client,
    /// which cuts its own connection halfway through a request line).
    ClientDisconnect,
    /// A reader thread stalls for [`FaultPlan::stall_ms`] between
    /// parsing a request and admitting it (a slow or wedged client).
    ReaderStall,
    /// The dispatcher's write to a connection fails; the connection is
    /// dropped and served around, never the server.
    DispatcherWriteFail,
}

/// Number of distinct fault sites.
pub const SITE_COUNT: usize = 7;

/// All sites, in [`FaultSite`] index order.
pub const SITES: [FaultSite; SITE_COUNT] = [
    FaultSite::DiskWriteFail,
    FaultSite::DiskWriteShort,
    FaultSite::DiskRenameFail,
    FaultSite::DiskReadCorrupt,
    FaultSite::ClientDisconnect,
    FaultSite::ReaderStall,
    FaultSite::DispatcherWriteFail,
];

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::DiskWriteFail => 0,
            FaultSite::DiskWriteShort => 1,
            FaultSite::DiskRenameFail => 2,
            FaultSite::DiskReadCorrupt => 3,
            FaultSite::ClientDisconnect => 4,
            FaultSite::ReaderStall => 5,
            FaultSite::DispatcherWriteFail => 6,
        }
    }

    /// The site's spec key (and display name).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::DiskWriteFail => "write_fail",
            FaultSite::DiskWriteShort => "write_short",
            FaultSite::DiskRenameFail => "rename_fail",
            FaultSite::DiskReadCorrupt => "read_corrupt",
            FaultSite::ClientDisconnect => "disconnect",
            FaultSite::ReaderStall => "reader_stall",
            FaultSite::DispatcherWriteFail => "write_err",
        }
    }
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit hash used for
/// every deterministic per-index decision in the fault plane (and for
/// the metrics reservoir sampler).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded fault schedule. Cheap to share (`Arc`), interior-mutable
/// only through atomics, deterministic given each site's call sequence.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    stall_ms: u64,
    /// Per-mille trigger rate per site (0 = never by rate).
    rates: [u16; SITE_COUNT],
    /// Explicit call indices that always trigger, per site.
    exact: [Vec<u64>; SITE_COUNT],
    /// Calls seen per site (the per-site index counter).
    calls: [AtomicU64; SITE_COUNT],
    /// Faults actually fired per site.
    fired: [AtomicU64; SITE_COUNT],
}

impl FaultPlan {
    /// A plan with the given seed and no faults armed. Arm sites with
    /// [`FaultPlan::with_rate`] / [`FaultPlan::with_exact`].
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            stall_ms: 10,
            rates: [0; SITE_COUNT],
            exact: Default::default(),
            calls: Default::default(),
            fired: Default::default(),
        }
    }

    /// Arms `site` at `per_mille` out of 1000 calls (clamped to 1000).
    pub fn with_rate(mut self, site: FaultSite, per_mille: u16) -> FaultPlan {
        self.rates[site.index()] = per_mille.min(1000);
        self
    }

    /// Arms exactly the given call indices of `site` (0-based, in
    /// addition to any rate).
    pub fn with_exact(mut self, site: FaultSite, indices: &[u64]) -> FaultPlan {
        self.exact[site.index()].extend_from_slice(indices);
        self
    }

    /// Sets the reader-stall duration.
    pub fn with_stall_ms(mut self, ms: u64) -> FaultPlan {
        self.stall_ms = ms;
        self
    }

    /// How long a fired [`FaultSite::ReaderStall`] sleeps.
    pub fn stall_ms(&self) -> u64 {
        self.stall_ms
    }

    /// Whether any site is armed at all.
    pub fn armed(&self) -> bool {
        self.rates.iter().any(|&r| r > 0) || self.exact.iter().any(|e| !e.is_empty())
    }

    /// One pass through an injection point: bumps the site's call
    /// counter and decides — purely from the seed, the site and the
    /// call index — whether the fault fires this time.
    pub fn fire(&self, site: FaultSite) -> bool {
        let s = site.index();
        let i = self.calls[s].fetch_add(1, Ordering::Relaxed);
        let hit = self.exact[s].contains(&i)
            || (self.rates[s] > 0
                && splitmix64(self.seed ^ ((s as u64 + 1) << 56) ^ i) % 1000
                    < u64::from(self.rates[s]));
        if hit {
            self.fired[s].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Faults fired at `site` so far.
    pub fn fired_count(&self, site: FaultSite) -> u64 {
        self.fired[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults fired across all sites.
    pub fn fired_total(&self) -> u64 {
        self.fired.iter().map(|f| f.load(Ordering::Relaxed)).sum()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A one-line human summary: `site fired/calls` per armed site.
    pub fn summary(&self) -> String {
        let mut parts = vec![format!("seed {}", self.seed)];
        for site in SITES {
            let s = site.index();
            let calls = self.calls[s].load(Ordering::Relaxed);
            let fired = self.fired[s].load(Ordering::Relaxed);
            if self.rates[s] > 0 || !self.exact[s].is_empty() || fired > 0 {
                parts.push(format!("{} {fired}/{calls}", site.name()));
            }
        }
        parts.join(" | ")
    }

    /// Parses a `--faults` spec: comma-separated `key=value` pairs.
    /// Keys: `seed`, `stall_ms`, and one per site (`write_fail`,
    /// `write_short`, `rename_fail`, `read_corrupt`, `disconnect`,
    /// `reader_stall`, `write_err`), each a per-mille rate in 0..=1000.
    ///
    /// # Errors
    ///
    /// An unknown key or an unparsable value.
    pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::seeded(1);
        for pair in spec.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{pair}` is not key=value"))?;
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|e| format!("fault spec `{pair}`: {e}"))?;
            match key.trim() {
                "seed" => plan.seed = n,
                "stall_ms" => plan.stall_ms = n,
                key => {
                    let site = SITES
                        .into_iter()
                        .find(|s| s.name() == key)
                        .ok_or_else(|| format!("unknown fault site `{key}`"))?;
                    if n > 1000 {
                        return Err(format!("fault rate `{pair}` exceeds 1000 per mille"));
                    }
                    plan.rates[site.index()] = n as u16;
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_is_deterministic_per_seed_and_index() {
        let decisions = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).with_rate(FaultSite::DiskWriteFail, 300);
            (0..64).map(|_| plan.fire(FaultSite::DiskWriteFail)).collect()
        };
        assert_eq!(decisions(7), decisions(7), "same seed, same schedule");
        assert_ne!(decisions(7), decisions(8), "different seeds diverge");
        let fired = decisions(7).iter().filter(|&&b| b).count();
        assert!((5..=25).contains(&fired), "300/1000 over 64 calls: {fired}");
    }

    #[test]
    fn sites_count_independently() {
        let plan = FaultPlan::seeded(3)
            .with_exact(FaultSite::DiskWriteFail, &[0, 2])
            .with_rate(FaultSite::ReaderStall, 1000);
        assert!(plan.fire(FaultSite::DiskWriteFail)); // call 0: exact
        assert!(!plan.fire(FaultSite::DiskWriteFail)); // call 1
        assert!(plan.fire(FaultSite::DiskWriteFail)); // call 2: exact
        assert!(plan.fire(FaultSite::ReaderStall)); // rate 1000 always fires
        assert_eq!(plan.fired_count(FaultSite::DiskWriteFail), 2);
        assert_eq!(plan.fired_count(FaultSite::ReaderStall), 1);
        assert_eq!(plan.fired_total(), 3);
        assert_eq!(plan.fired_count(FaultSite::DiskReadCorrupt), 0);
    }

    #[test]
    fn specs_parse_and_reject_garbage() {
        let plan =
            FaultPlan::parse_spec("seed=42, write_fail=200, disconnect=50, stall_ms=5").unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.stall_ms(), 5);
        assert!(plan.armed());
        assert_eq!(plan.rates[FaultSite::DiskWriteFail.index()], 200);
        assert_eq!(plan.rates[FaultSite::ClientDisconnect.index()], 50);
        assert!(FaultPlan::parse_spec("frobnicate=1").is_err());
        assert!(FaultPlan::parse_spec("write_fail").is_err());
        assert!(FaultPlan::parse_spec("write_fail=2000").is_err());
        assert!(FaultPlan::parse_spec("seed=nope").is_err());
        assert!(!FaultPlan::parse_spec("seed=9").unwrap().armed());
    }

    #[test]
    fn summaries_name_armed_sites() {
        let plan = FaultPlan::seeded(11).with_exact(FaultSite::DiskRenameFail, &[0]);
        let _ = plan.fire(FaultSite::DiskRenameFail);
        let text = plan.summary();
        assert!(text.contains("seed 11"), "{text}");
        assert!(text.contains("rename_fail 1/1"), "{text}");
        assert!(!text.contains("disconnect"), "{text}");
    }

    #[test]
    fn splitmix_matches_published_vectors() {
        // Reference values from the splitmix64 test vectors
        // (seed 1234567 advanced by the golden-ratio increment).
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
