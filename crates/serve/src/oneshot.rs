//! One-shot-equivalent allocation: the server-side reproduction of
//! `regbal alloc --json`.
//!
//! The protocol's contract is that a served `alloc` member is
//! **byte-identical** (when pretty-printed) to what the one-shot CLI
//! prints for the same module, thread count, register-file size and
//! strategy. To keep that promise structural rather than coincidental,
//! this module owns the document builders and the CLI delegates to
//! them; the allocation entry points are the very ones the CLI calls
//! ([`regbal_core::allocate_threads`],
//! [`regbal_core::allocate_threads_with_spill`],
//! [`regbal_core::allocate_ladder_with`] under the default configs).

use regbal_core::{
    allocate_ladder_with, allocate_threads, allocate_threads_with_spill, AllocError,
    HybridAllocation, LadderAllocation, LadderConfig, MultiAllocation,
};
use regbal_eval::{
    balanced_sanitizer, ladder_sanitizer, ladder_trail_json, thread_alloc_json, Json,
    PuLadderTrail,
};
use regbal_ir::{inline_module, parse_module, Func, Inst, ParseError};
use regbal_sim::SanitizerConfig;

/// The allocation strategies the server speaks — the one-shot
/// `regbal alloc` modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeStrategy {
    /// Pure balancing (`regbal alloc`).
    Balanced,
    /// Balancing with last-resort spilling (`--spill`).
    BalancedSpill,
    /// The degradation ladder (`--ladder`).
    Ladder,
}

impl ServeStrategy {
    /// The wire name (matches [`regbal_workloads::TRACE_STRATEGIES`]).
    pub fn name(self) -> &'static str {
        match self {
            ServeStrategy::Balanced => "balanced",
            ServeStrategy::BalancedSpill => "balanced-spill",
            ServeStrategy::Ladder => "ladder",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message naming the unknown strategy.
    pub fn parse(s: &str) -> Result<ServeStrategy, String> {
        match s {
            "balanced" => Ok(ServeStrategy::Balanced),
            "balanced-spill" => Ok(ServeStrategy::BalancedSpill),
            "ladder" => Ok(ServeStrategy::Ladder),
            other => Err(format!(
                "unknown strategy `{other}` (balanced|balanced-spill|ladder)"
            )),
        }
    }

    /// The `regbal alloc` flags reproducing this strategy one-shot.
    pub fn cli_flags(self) -> &'static [&'static str] {
        match self {
            ServeStrategy::Balanced => &[],
            ServeStrategy::BalancedSpill => &["--spill"],
            ServeStrategy::Ladder => &["--ladder"],
        }
    }
}

/// Why a module could not be loaded.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadError {
    /// The source text failed to parse; carries the `regbal-ir`
    /// error with its line/column.
    Parse(ParseError),
    /// Structurally unusable (empty module, no thread entry point, or
    /// a subroutine-inlining failure).
    Module(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Parse(e) => write!(f, "{e}"),
            LoadError::Module(m) => write!(f, "{m}"),
        }
    }
}

/// Loads a module exactly the way the CLI loads one input file:
/// parse every function, treat `call`ed functions as subroutines and
/// inline them, and return the remaining root functions (the hardware
/// threads), in order.
///
/// # Errors
///
/// [`LoadError::Parse`] with the `regbal-ir` line/column, or
/// [`LoadError::Module`] for an empty module, a module where every
/// function is called (no entry point), or an inlining failure.
pub fn load_module(text: &str) -> Result<Vec<Func>, LoadError> {
    let module = parse_module(text).map_err(LoadError::Parse)?;
    if module.is_empty() {
        return Err(LoadError::Module("no functions found".into()));
    }
    let called: std::collections::HashSet<String> = module
        .iter()
        .flat_map(|f| f.iter_insts())
        .filter_map(|(_, _, i)| match i {
            Inst::Call { callee } => Some(callee.clone()),
            _ => None,
        })
        .collect();
    let roots: Vec<&Func> = module.iter().filter(|f| !called.contains(&f.name)).collect();
    if roots.is_empty() {
        return Err(LoadError::Module(
            "every function is called by another; no thread entry point".into(),
        ));
    }
    roots
        .iter()
        .map(|f| {
            inline_module(&module, &f.name).map_err(|e| LoadError::Module(e.to_string()))
        })
        .collect()
}

/// Replicates a module's root threads `nthd` times — the equivalent of
/// listing the same input file `nthd` times on the `regbal alloc`
/// command line (whole-module groups repeat in order).
pub fn replicate(roots: &[Func], nthd: usize) -> Vec<Func> {
    let mut funcs = Vec::with_capacity(roots.len() * nthd.max(1));
    for _ in 0..nthd.max(1) {
        funcs.extend(roots.iter().cloned());
    }
    funcs
}

/// An allocation failure in wire form: the stable
/// [`regbal_core::AllocError::code`] and the exact message the
/// one-shot CLI would print.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocFailure {
    /// Stable machine-readable code.
    pub code: &'static str,
    /// The CLI-identical message.
    pub message: String,
}

/// A successful allocation under one of the served strategies.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Pure balancing.
    Balanced(MultiAllocation),
    /// Balancing with last-resort spilling.
    Spill(HybridAllocation),
    /// A settled degradation-ladder walk.
    Ladder(Box<LadderAllocation>),
}

/// Allocates `funcs` the way the one-shot CLI would: the same entry
/// points, the same default configurations (and thus the same default
/// spill bases, so spill code is byte-identical too).
///
/// # Errors
///
/// [`AllocFailure`] carrying the CLI-identical message and stable code.
pub fn allocate(
    funcs: &[Func],
    nreg: usize,
    strategy: ServeStrategy,
) -> Result<Verdict, AllocFailure> {
    match strategy {
        ServeStrategy::Balanced => allocate_threads(funcs, nreg)
            .map(Verdict::Balanced)
            .map_err(|e| AllocFailure {
                code: e.code(),
                message: e.to_string(),
            }),
        ServeStrategy::BalancedSpill => allocate_threads_with_spill(funcs, nreg)
            .map(Verdict::Spill)
            .map_err(|e| AllocFailure {
                code: e.code(),
                message: e.to_string(),
            }),
        ServeStrategy::Ladder => allocate_ladder_with(funcs, nreg, &LadderConfig::default())
            .map(|l| Verdict::Ladder(Box::new(l)))
            .map_err(|e| AllocFailure {
                code: e.error.code(),
                message: e.to_string(),
            }),
    }
}

/// The shared skeleton of every `regbal-alloc/1` document, in the
/// exact member order `regbal alloc --json` prints.
pub fn alloc_doc(
    strategy: &str,
    nreg: usize,
    demand: usize,
    sgr: usize,
    threads: Vec<Json>,
) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str("regbal-alloc/1")),
        ("strategy".into(), Json::str(strategy)),
        ("nreg".into(), Json::uint(nreg as u64)),
        ("demand".into(), Json::uint(demand as u64)),
        ("sgr".into(), Json::uint(sgr as u64)),
        ("threads".into(), Json::Arr(threads)),
    ])
}

/// Builds the `regbal-alloc/1` document for a verdict — byte-identical
/// (pretty-printed) to the one-shot `regbal alloc --json` output for
/// the same inputs.
pub fn verdict_doc(funcs: &[Func], nreg: usize, verdict: &Verdict) -> Json {
    match verdict {
        Verdict::Balanced(alloc) => {
            let threads = alloc
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| thread_alloc_json(&funcs[i].name, t.pr(), t.sr(), t.moves(), 0))
                .collect();
            alloc_doc("balanced", nreg, alloc.total_registers(), alloc.sgr(), threads)
        }
        Verdict::Spill(hybrid) => {
            let threads = hybrid
                .alloc
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    thread_alloc_json(&funcs[i].name, t.pr(), t.sr(), t.moves(), hybrid.spills[i])
                })
                .collect();
            alloc_doc(
                "balanced-spill",
                nreg,
                hybrid.alloc.total_registers(),
                hybrid.alloc.sgr(),
                threads,
            )
        }
        Verdict::Ladder(result) => {
            let threads = result
                .thread_summaries()
                .iter()
                .enumerate()
                .map(|(i, t)| thread_alloc_json(&funcs[i].name, t.pr, t.sr, t.moves, t.spills))
                .collect();
            let sgr = result.balanced_alloc().map_or(0, |a| a.sgr());
            let mut doc = alloc_doc("ladder", nreg, result.registers_used(), sgr, threads);
            if let Json::Obj(members) = &mut doc {
                members.push((
                    "ladder".into(),
                    ladder_trail_json(&PuLadderTrail::from(result.as_ref())),
                ));
            }
            doc
        }
    }
}

impl Verdict {
    /// The physical-register programs plus the sanitizer layout that
    /// knows which registers each thread owns — everything a
    /// clobber-instrumented validation run needs.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidAllocation`] if the stored allocation does
    /// not match its own programs (an internal invariant violation).
    pub fn compiled(&self, funcs: &[Func]) -> Result<(Vec<Func>, SanitizerConfig), AllocError> {
        match self {
            Verdict::Balanced(alloc) => Ok((
                alloc.try_rewrite_funcs(funcs)?,
                balanced_sanitizer(alloc),
            )),
            Verdict::Spill(h) => Ok((
                h.alloc.try_rewrite_funcs(&h.funcs)?,
                balanced_sanitizer(&h.alloc),
            )),
            Verdict::Ladder(l) => {
                Ok((l.rewrite()?, ladder_sanitizer(l, funcs.len())))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "func t {\nbb0:\n v0 = mov 64\n v1 = load sram[v0+0]\n v1 = add v1, 1\n store sram[v0+0], v1\n iter_end\n halt\n}";

    #[test]
    fn load_module_inlines_and_replicates_like_the_cli() {
        let roots = load_module(PROG).unwrap();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "t");
        let four = replicate(&roots, 4);
        assert_eq!(four.len(), 4);
        assert!(four.iter().all(|f| f.name == "t"));

        let sub = "func rx {\nbb0:\n v0 = mov 64\n call checksum\n store scratch[v0+0], v1\n halt\n}\nfunc checksum {\nbb0:\n v1 = load sram[v0+0]\n v1 = add v1, 7\n halt\n}";
        let roots = load_module(sub).unwrap();
        assert_eq!(roots.len(), 1, "subroutines are inlined away");
        assert_eq!(roots[0].name, "rx");
    }

    #[test]
    fn load_errors_carry_parse_positions_and_messages() {
        match load_module("func t {\nbb0:\n v0 = frob 1\n}").unwrap_err() {
            LoadError::Parse(e) => {
                assert_eq!(e.line, 3);
                assert!(e.col >= 1);
            }
            other => panic!("expected a parse error: {other:?}"),
        }
        assert_eq!(
            load_module("").unwrap_err(),
            LoadError::Module("no functions found".into())
        );
    }

    #[test]
    fn verdict_docs_follow_the_alloc_schema() {
        let funcs = replicate(&load_module(PROG).unwrap(), 2);
        for (strategy, name) in [
            (ServeStrategy::Balanced, "balanced"),
            (ServeStrategy::BalancedSpill, "balanced-spill"),
            (ServeStrategy::Ladder, "ladder"),
        ] {
            let verdict = allocate(&funcs, 8, strategy).unwrap();
            let doc = verdict_doc(&funcs, 8, &verdict);
            let keys: Vec<&str> = match &doc {
                Json::Obj(m) => m.iter().map(|(k, _)| k.as_str()).collect(),
                _ => panic!("object expected"),
            };
            assert_eq!(&keys[..6], &["schema", "strategy", "nreg", "demand", "sgr", "threads"]);
            assert_eq!(doc.get("strategy").and_then(Json::as_str), Some(name));
            assert_eq!(doc.get("nreg").and_then(Json::as_u64), Some(8));
            let threads = doc.get("threads").and_then(Json::as_arr).unwrap();
            assert_eq!(threads.len(), 2);
            assert_eq!(doc.get("ladder").is_some(), strategy == ServeStrategy::Ladder);
            // The doc survives its own compact framing.
            let reparsed = regbal_eval::json::parse(&doc.compact()).unwrap();
            assert_eq!(reparsed, doc);
        }
    }

    #[test]
    fn failures_carry_the_cli_message_and_stable_code() {
        // Two hungry threads cannot share 4 registers without spilling.
        let hungry = "func h {\nbb0:\n v0 = mov 1\n v1 = mov 2\n v2 = mov 3\n ctx\n v3 = add v0, v1\n v3 = add v3, v2\n store scratch[v3+0], v3\n halt\n}";
        let funcs = replicate(&load_module(hungry).unwrap(), 2);
        let err = allocate(&funcs, 4, ServeStrategy::Balanced).unwrap_err();
        assert_eq!(err.code, "infeasible");
        assert!(err.message.contains("cannot fit"), "{}", err.message);
        // The spilling strategies rescue the same inputs.
        assert!(allocate(&funcs, 4, ServeStrategy::BalancedSpill).is_ok());
        assert!(allocate(&funcs, 4, ServeStrategy::Ladder).is_ok());
    }

    #[test]
    fn compiled_verdicts_rewrite_to_physical_registers() {
        let funcs = replicate(&load_module(PROG).unwrap(), 2);
        for strategy in [
            ServeStrategy::Balanced,
            ServeStrategy::BalancedSpill,
            ServeStrategy::Ladder,
        ] {
            let verdict = allocate(&funcs, 8, strategy).unwrap();
            let (physical, _sanitizer) = verdict.compiled(&funcs).unwrap();
            assert_eq!(physical.len(), 2);
            for f in &physical {
                assert!(!format!("{f}").contains("v0"), "virtual register left over");
            }
        }
    }
}
