//! The server's persistent cross-request caches.
//!
//! Two bounded LRU tiers (both built on [`regbal_eval::Lru`]) survive
//! across requests, connections and replay passes:
//!
//! * **responses** — keyed `(content hash, Nthd, Nreg, strategy)`,
//!   holding finished outcomes (the `regbal-alloc/1` document, or a
//!   cached failure). A hit answers without touching the allocator.
//! * **trajectories** — keyed `(content hash, Nthd)`, holding the
//!   loaded thread programs plus the engine's *whole-sweep* descent
//!   vectors ([`regbal_core::allocate_threads_sweep`] and
//!   [`regbal_core::allocate_threads_with_spill_sweep`] at the
//!   one-shot default spill base). The greedy descent never consults
//!   the register-file size while choosing steps, so one cached
//!   descent answers **every** swept `Nreg` — a request at a new
//!   budget for a known module replays the trajectory instead of
//!   re-searching. The ladder's balanced rungs are seeded from the
//!   same vectors ([`regbal_core::allocate_ladder_seeded`]), which is
//!   behaviour-preserving because the engine is deterministic and the
//!   ladder's first spilling rung uses the same default base
//!   ([`regbal_core::DEFAULT_LADDER_SPILL_BASE`] ==
//!   [`regbal_core::DEFAULT_SPILL_BASE`]).
//!
//! All map mutation happens on the dispatcher thread (deterministic
//! hit/miss/eviction accounting); worker threads only race on the
//! trajectories' interior [`OnceLock`]s, so exactly one worker runs
//! each descent and the others share it.

use crate::oneshot::{self, ServeStrategy};
use crate::store::{DiskRead, DiskStore};
use regbal_core::{
    allocate_ladder_seeded, allocate_threads_sweep, allocate_threads_with_spill_sweep,
    AllocError, EngineConfig, HybridAllocation, LadderConfig, MultiAllocation, RungProviders,
    DEFAULT_SPILL_BASE,
};
use regbal_eval::{Json, Lru};
use regbal_ir::Func;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The response-cache key: content hash, replica count, register-file
/// size, strategy.
pub type ResponseKey = (u64, usize, usize, ServeStrategy);

/// A finished outcome, cheap to replay from the cache.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The `regbal-alloc/1` document of a successful allocation.
    Doc(Arc<Json>),
    /// An allocation failure (negative caching: the engine's verdicts
    /// are deterministic, so failures replay like successes).
    Fail {
        /// Stable [`regbal_core::AllocError::code`].
        code: String,
        /// The CLI-identical message.
        message: String,
    },
    /// The module text failed to parse.
    Parse {
        /// The `regbal-ir` message.
        message: String,
        /// Line/column into the `func` text (0,0 for structural module
        /// errors that have no position).
        at: (usize, usize),
    },
}

/// One module's loaded programs plus its lazily-computed whole-sweep
/// descent vectors. Shared by `Arc` with the worker pool.
#[derive(Debug)]
pub struct Trajectory {
    /// The replicated thread programs (roots × `nthd`).
    pub funcs: Vec<Func>,
    sweep: Vec<usize>,
    balanced: OnceLock<Vec<Result<MultiAllocation, AllocError>>>,
    hybrid: OnceLock<Vec<Result<HybridAllocation, AllocError>>>,
}

impl Trajectory {
    fn new(funcs: Vec<Func>, sweep: Vec<usize>) -> Trajectory {
        Trajectory {
            funcs,
            sweep,
            balanced: OnceLock::new(),
            hybrid: OnceLock::new(),
        }
    }

    fn balanced_verdicts(
        &self,
        descents: &AtomicU64,
    ) -> &[Result<MultiAllocation, AllocError>] {
        self.balanced.get_or_init(|| {
            descents.fetch_add(1, Ordering::Relaxed);
            allocate_threads_sweep(&self.funcs, &self.sweep, EngineConfig::default())
        })
    }

    fn hybrid_verdicts(&self, descents: &AtomicU64) -> &[Result<HybridAllocation, AllocError>] {
        self.hybrid.get_or_init(|| {
            descents.fetch_add(1, Ordering::Relaxed);
            let seeds = self.balanced_verdicts(descents);
            allocate_threads_with_spill_sweep(
                &self.funcs,
                &self.sweep,
                DEFAULT_SPILL_BASE,
                EngineConfig::default(),
                Some(seeds),
            )
        })
    }

    /// The balanced verdict at `nreg`, from the shared descent when
    /// `nreg` is on the sweep and from a dedicated run otherwise —
    /// bit-identical either way (the core crate's sweep-equivalence
    /// guarantee).
    fn balanced_at(
        &self,
        nreg: usize,
        descents: &AtomicU64,
    ) -> Result<MultiAllocation, AllocError> {
        match self.sweep.iter().position(|&n| n == nreg) {
            Some(pos) => self.balanced_verdicts(descents)[pos].clone(),
            None => regbal_core::allocate_threads(&self.funcs, nreg),
        }
    }

    /// The hybrid verdict at `nreg` and the one-shot default spill
    /// base, trajectory-shared on-sweep.
    fn hybrid_at(
        &self,
        nreg: usize,
        descents: &AtomicU64,
    ) -> Result<HybridAllocation, AllocError> {
        match self.sweep.iter().position(|&n| n == nreg) {
            Some(pos) => self.hybrid_verdicts(descents)[pos].clone(),
            None => regbal_core::allocate_threads_with_spill(&self.funcs, nreg),
        }
    }

    /// Computes the outcome for one request against this trajectory:
    /// allocate under `strategy`, build the CLI-identical document.
    /// Runs on a worker thread; only the [`OnceLock`] descents are
    /// shared state.
    pub fn outcome(
        &self,
        nreg: usize,
        strategy: ServeStrategy,
        descents: &AtomicU64,
    ) -> Outcome {
        let fail = |code: &'static str, message: String| Outcome::Fail {
            code: code.into(),
            message,
        };
        let verdict = match strategy {
            ServeStrategy::Balanced => match self.balanced_at(nreg, descents) {
                Ok(alloc) => oneshot::Verdict::Balanced(alloc),
                Err(e) => return fail(e.code(), e.to_string()),
            },
            ServeStrategy::BalancedSpill => match self.hybrid_at(nreg, descents) {
                Ok(h) => oneshot::Verdict::Spill(h),
                Err(e) => return fail(e.code(), e.to_string()),
            },
            ServeStrategy::Ladder => {
                let providers = RungProviders {
                    balanced: Some(Box::new(|| self.balanced_at(nreg, descents))),
                    // No seed for the scratch rung: the server's cache
                    // keys predate the scratch tier, so the ladder
                    // computes that rung itself when it gets there.
                    balanced_scratch: None,
                    balanced_spill: Some(Box::new(|| self.hybrid_at(nreg, descents))),
                };
                match allocate_ladder_seeded(
                    &self.funcs,
                    nreg,
                    &LadderConfig::default(),
                    providers,
                ) {
                    Ok(l) => oneshot::Verdict::Ladder(Box::new(l)),
                    Err(e) => return fail(e.error.code(), e.to_string()),
                }
            }
        };
        Outcome::Doc(Arc::new(oneshot::verdict_doc(&self.funcs, nreg, &verdict)))
    }
}

/// Deterministic cache counters, exposed by the `stats` request.
#[derive(Debug, Default)]
pub struct Counters {
    /// Top-level request lines admitted (any kind).
    pub requests: u64,
    /// Individual alloc units processed (batch elements counted).
    pub allocs: u64,
    /// Response-cache hits (including duplicates within one wave,
    /// which are served from the wave's own computation).
    pub hits: u64,
    /// Response-cache misses.
    pub misses: u64,
    /// Response-cache evictions.
    pub evictions: u64,
    /// Trajectory-cache evictions.
    pub trajectory_evictions: u64,
    /// Whole-sweep descents actually run (monotonic; shared with the
    /// worker pool, but each [`OnceLock`] initialises exactly once, so
    /// the total is deterministic at any worker count).
    pub descents: Arc<AtomicU64>,
    /// Alloc misses that reused an already-resident trajectory
    /// instead of loading the module afresh.
    pub descent_reuses: u64,
    /// Distinct content hashes admitted.
    pub distinct: HashSet<u64>,
    /// Memory misses answered from the on-disk store (responses or
    /// modules); each is also counted as a `hits` — a warm answer is a
    /// warm answer, wherever it came from.
    pub disk_hits: u64,
    /// Corrupt or truncated disk entries degraded to cold misses.
    pub disk_corrupt: u64,
    /// Entries persisted to disk.
    pub disk_writes: u64,
    /// Disk writes that failed after every retry (logged, never fatal).
    pub disk_write_errors: u64,
    /// Disk-write retries attempted (a write that lands on retry `k`
    /// counts `k` here and one `disk_writes`).
    pub disk_retries: u64,
}

/// The bounded, deterministic retry schedule for transient disk-write
/// failures: one attempt plus one retry per entry, sleeping the listed
/// milliseconds before each retry. Short and fixed — the disk tier is
/// an accelerator, so after the schedule is exhausted the write is
/// simply dropped (a future cold miss), never an error.
pub const WRITE_BACKOFF_MS: [u64; 2] = [1, 4];

/// Runs `write` up to `1 + WRITE_BACKOFF_MS.len()` times, sleeping the
/// schedule between attempts and counting retries into `retries`.
fn retry_write(retries: &mut u64, mut write: impl FnMut() -> bool) -> bool {
    if write() {
        return true;
    }
    for ms in WRITE_BACKOFF_MS {
        std::thread::sleep(std::time::Duration::from_millis(ms));
        *retries += 1;
        if write() {
            return true;
        }
    }
    false
}

/// The persistent cross-request cache: both LRU tiers plus counters.
/// Owned by the dispatcher; outlives connections.
pub struct ServeCache {
    sweep: Vec<usize>,
    responses: Lru<ResponseKey, Outcome>,
    trajectories: Lru<(u64, usize), Arc<Trajectory>>,
    store: Option<DiskStore>,
    /// The counters (dispatcher-updated, except `descents`).
    pub counters: Counters,
}

impl ServeCache {
    /// A fresh cache: `cache_cap` response entries, `trajectory_cap`
    /// trajectories, descents shared across the given `sweep`.
    pub fn new(cache_cap: usize, trajectory_cap: usize, sweep: Vec<usize>) -> ServeCache {
        ServeCache {
            sweep,
            responses: Lru::new(cache_cap),
            trajectories: Lru::new(trajectory_cap),
            store: None,
            counters: Counters::default(),
        }
    }

    /// Attaches a content-addressed on-disk store: memory misses probe
    /// the disk before being declared cold, and every admitted module
    /// text and finished outcome is written through — so a restarted
    /// server over the same directory answers warm.
    pub fn with_store(mut self, store: DiskStore) -> ServeCache {
        self.store = Some(store);
        self
    }

    /// Whether a disk store is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Response-cache lookup, counting a hit on success. A memory miss
    /// probes the disk store (when attached); a verified disk entry is
    /// promoted into the memory tier and counts as a hit, a corrupt or
    /// truncated one degrades to a cold miss with a counter bump.
    pub fn lookup(&mut self, key: &ResponseKey) -> Option<Outcome> {
        if let Some(outcome) = self.responses.get(key) {
            self.counters.hits += 1;
            return Some(outcome.clone());
        }
        if let Some(store) = &self.store {
            match store.load_response(key) {
                DiskRead::Hit(outcome) => {
                    self.counters.hits += 1;
                    self.counters.disk_hits += 1;
                    if self.responses.insert(*key, outcome.clone()).is_some() {
                        self.counters.evictions += 1;
                    }
                    return Some(outcome);
                }
                DiskRead::Corrupt => self.counters.disk_corrupt += 1,
                DiskRead::Miss => {}
            }
        }
        self.counters.misses += 1;
        None
    }

    /// Stores a computed outcome, counting any eviction, and writes it
    /// through to the disk store when one is attached (retrying
    /// transient write failures on the [`WRITE_BACKOFF_MS`] schedule).
    pub fn store(&mut self, key: ResponseKey, outcome: Outcome) {
        if let Some(store) = &self.store {
            if retry_write(&mut self.counters.disk_retries, || {
                store.store_response(&key, &outcome)
            }) {
                self.counters.disk_writes += 1;
            } else {
                self.counters.disk_write_errors += 1;
            }
        }
        if self.responses.insert(key, outcome).is_some() {
            self.counters.evictions += 1;
        }
    }

    /// The resident trajectory for `(hash, nthd)`, if any (counts a
    /// descent reuse — the caller only asks after a response miss).
    /// When the memory tier misses but the disk store holds a verified
    /// module text under `hash`, the trajectory is rebuilt from it (the
    /// descent itself is deterministic, so a rebuilt trajectory serves
    /// the same bytes the original did).
    pub fn trajectory(&mut self, hash: u64, nthd: usize) -> Option<Arc<Trajectory>> {
        let t = self.trajectories.get(&(hash, nthd)).cloned();
        if t.is_some() {
            self.counters.descent_reuses += 1;
            return t;
        }
        let text = match &self.store {
            Some(store) => match store.load_module(hash) {
                DiskRead::Hit(text) => text,
                DiskRead::Corrupt => {
                    self.counters.disk_corrupt += 1;
                    return None;
                }
                DiskRead::Miss => return None,
            },
            None => return None,
        };
        match self.admit_trajectory(hash, nthd, &text) {
            Ok(t) => {
                self.counters.disk_hits += 1;
                Some(t)
            }
            // A verified module that no longer loads (e.g. written by
            // a newer grammar) degrades to a miss, never an error.
            Err(_) => {
                self.counters.disk_corrupt += 1;
                None
            }
        }
    }

    /// Loads `text` as a module, replicates it `nthd` times and admits
    /// the trajectory. Load failures come back as a ready [`Outcome`]
    /// (and are *not* admitted — `Err` is cached at the response tier
    /// by the caller instead).
    ///
    /// # Errors
    ///
    /// The ready error outcome for an unloadable module.
    pub fn admit_trajectory(
        &mut self,
        hash: u64,
        nthd: usize,
        text: &str,
    ) -> Result<Arc<Trajectory>, Outcome> {
        let roots = oneshot::load_module(text).map_err(|e| match e {
            oneshot::LoadError::Parse(p) => Outcome::Parse {
                message: p.to_string(),
                at: (p.line, p.col),
            },
            oneshot::LoadError::Module(m) => Outcome::Parse {
                message: m,
                at: (0, 0),
            },
        })?;
        let funcs = oneshot::replicate(&roots, nthd);
        let traj = Arc::new(Trajectory::new(funcs, self.sweep.clone()));
        if let Some(store) = &self.store {
            if retry_write(&mut self.counters.disk_retries, || {
                store.store_module(hash, text)
            }) {
                self.counters.disk_writes += 1;
            } else {
                self.counters.disk_write_errors += 1;
            }
        }
        if self
            .trajectories
            .insert((hash, nthd), traj.clone())
            .is_some()
        {
            self.counters.trajectory_evictions += 1;
        }
        Ok(traj)
    }

    /// Records one admitted top-level request.
    pub fn count_request(&mut self) {
        self.counters.requests += 1;
    }

    /// Records one alloc unit and its content hash.
    pub fn count_alloc(&mut self, hash: u64) {
        self.counters.allocs += 1;
        self.counters.distinct.insert(hash);
    }

    /// The `stats` member of a stats response. The `disk_bytes` and
    /// `gc_*` members come straight from the capped store (all zero
    /// when uncapped or memory-only); everything else is the
    /// deterministic [`Counters`] set.
    pub fn stats_json(&self) -> Json {
        let c = &self.counters;
        let disk_bytes = self.store.as_ref().map(DiskStore::bytes).unwrap_or(0);
        let (gc_evictions, gc_evicted_bytes) = self
            .store
            .as_ref()
            .map(DiskStore::gc_counters)
            .unwrap_or((0, 0));
        Json::Obj(vec![
            ("requests".into(), Json::uint(c.requests)),
            ("allocs".into(), Json::uint(c.allocs)),
            ("hits".into(), Json::uint(c.hits)),
            ("misses".into(), Json::uint(c.misses)),
            ("evictions".into(), Json::uint(c.evictions)),
            ("entries".into(), Json::uint(self.responses.len() as u64)),
            ("cache_cap".into(), Json::uint(self.responses.cap() as u64)),
            (
                "trajectories".into(),
                Json::uint(self.trajectories.len() as u64),
            ),
            (
                "trajectory_evictions".into(),
                Json::uint(c.trajectory_evictions),
            ),
            (
                "descents".into(),
                Json::uint(c.descents.load(Ordering::Relaxed)),
            ),
            ("descent_reuses".into(), Json::uint(c.descent_reuses)),
            (
                "distinct_functions".into(),
                Json::uint(c.distinct.len() as u64),
            ),
            ("disk_hits".into(), Json::uint(c.disk_hits)),
            ("disk_corrupt".into(), Json::uint(c.disk_corrupt)),
            ("disk_writes".into(), Json::uint(c.disk_writes)),
            (
                "disk_write_errors".into(),
                Json::uint(c.disk_write_errors),
            ),
            ("disk_retries".into(), Json::uint(c.disk_retries)),
            ("disk_bytes".into(), Json::uint(disk_bytes)),
            ("gc_evictions".into(), Json::uint(gc_evictions)),
            (
                "gc_evicted_bytes".into(),
                Json::uint(gc_evicted_bytes),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::content_hash;

    const PROG: &str = "func t {\nbb0:\n v0 = mov 64\n v1 = load sram[v0+0]\n v1 = add v1, 1\n store sram[v0+0], v1\n iter_end\n halt\n}";

    fn cache() -> ServeCache {
        ServeCache::new(4096, 64, vec![8, 16, 32])
    }

    #[test]
    fn one_descent_serves_every_swept_budget_and_strategy() {
        let mut cache = cache();
        let h = content_hash(PROG);
        let traj = cache.admit_trajectory(h, 2, PROG).unwrap();
        let descents = cache.counters.descents.clone();
        for nreg in [8, 16, 32] {
            for strategy in [
                ServeStrategy::Balanced,
                ServeStrategy::BalancedSpill,
                ServeStrategy::Ladder,
            ] {
                let outcome = traj.outcome(nreg, strategy, &descents);
                match outcome {
                    Outcome::Doc(doc) => {
                        assert_eq!(doc.get("nreg").and_then(Json::as_u64), Some(nreg as u64));
                    }
                    Outcome::Fail { .. } | Outcome::Parse { .. } => {
                        panic!("{strategy:?}@{nreg} failed")
                    }
                }
            }
        }
        // Nine requests, at most two descents (balanced + hybrid): the
        // trajectory answered every budget and the ladder's rungs were
        // seeded, not re-searched.
        assert!(descents.load(Ordering::Relaxed) <= 2);
    }

    #[test]
    fn trajectory_verdicts_match_dedicated_one_shot_runs() {
        let cache_sweep = vec![8, 32];
        let mut cache = ServeCache::new(16, 16, cache_sweep);
        let traj = cache.admit_trajectory(content_hash(PROG), 2, PROG).unwrap();
        let descents = AtomicU64::new(0);
        for nreg in [8, 32, 20] {
            // 20 is off-sweep: a dedicated run, still identical.
            for strategy in [
                ServeStrategy::Balanced,
                ServeStrategy::BalancedSpill,
                ServeStrategy::Ladder,
            ] {
                let served = traj.outcome(nreg, strategy, &descents);
                let direct = oneshot::allocate(&traj.funcs, nreg, strategy)
                    .map(|v| oneshot::verdict_doc(&traj.funcs, nreg, &v));
                match (served, direct) {
                    (Outcome::Doc(a), Ok(b)) => {
                        assert_eq!(a.pretty(), b.pretty(), "{strategy:?}@{nreg} diverged");
                    }
                    (Outcome::Fail { message, .. }, Err(e)) => {
                        assert_eq!(message, e.message);
                    }
                    (a, b) => panic!("{strategy:?}@{nreg}: served {a:?} vs direct {b:?}"),
                }
            }
        }
    }

    #[test]
    fn response_tier_counts_hits_misses_and_evictions() {
        let mut cache = ServeCache::new(1, 16, vec![32]);
        let key_a: ResponseKey = (1, 1, 32, ServeStrategy::Balanced);
        let key_b: ResponseKey = (2, 1, 32, ServeStrategy::Balanced);
        assert!(cache.lookup(&key_a).is_none());
        cache.store(
            key_a,
            Outcome::Fail {
                code: "infeasible".into(),
                message: "m".into(),
            },
        );
        assert!(cache.lookup(&key_a).is_some());
        // Capacity one: a second key evicts the first.
        cache.store(
            key_b,
            Outcome::Fail {
                code: "infeasible".into(),
                message: "m".into(),
            },
        );
        assert!(cache.lookup(&key_a).is_none());
        assert_eq!(cache.counters.hits, 1);
        assert_eq!(cache.counters.misses, 2);
        assert_eq!(cache.counters.evictions, 1);
    }

    #[test]
    fn retry_write_follows_the_bounded_schedule() {
        // Succeeds on the final retry: all retries counted, write lands.
        let mut retries = 0;
        let mut calls = 0;
        assert!(retry_write(&mut retries, || {
            calls += 1;
            calls == 1 + WRITE_BACKOFF_MS.len()
        }));
        assert_eq!(retries, WRITE_BACKOFF_MS.len() as u64);
        // Never succeeds: bounded attempts, reported failed.
        let mut retries = 0;
        let mut calls = 0;
        assert!(!retry_write(&mut retries, || {
            calls += 1;
            false
        }));
        assert_eq!(calls, 1 + WRITE_BACKOFF_MS.len());
        assert_eq!(retries, WRITE_BACKOFF_MS.len() as u64);
        // First-try success never sleeps or counts.
        let mut retries = 0;
        assert!(retry_write(&mut retries, || true));
        assert_eq!(retries, 0);
    }

    #[test]
    fn transient_write_faults_are_healed_by_retry() {
        use crate::faults::{FaultPlan, FaultSite};
        use crate::store::DiskStore;
        let dir = std::env::temp_dir().join(format!(
            "regbal-cache-retry-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // The first write attempt fails; the retry (call index 1) lands.
        let plan = Arc::new(FaultPlan::seeded(3).with_exact(FaultSite::DiskWriteFail, &[0]));
        let store = DiskStore::open(&dir).unwrap().with_faults(plan);
        let mut cache = ServeCache::new(16, 16, vec![32]).with_store(store);
        let key: ResponseKey = (7, 1, 32, ServeStrategy::Balanced);
        cache.store(
            key,
            Outcome::Fail {
                code: "infeasible".into(),
                message: "m".into(),
            },
        );
        assert_eq!(cache.counters.disk_writes, 1);
        assert_eq!(cache.counters.disk_write_errors, 0);
        assert_eq!(cache.counters.disk_retries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unloadable_modules_become_parse_outcomes() {
        let mut cache = cache();
        let bad = "func t {\nbb0:\n v0 = frob 1\n}";
        match cache.admit_trajectory(content_hash(bad), 1, bad) {
            Err(Outcome::Parse { at, .. }) => assert_eq!(at.0, 3),
            other => panic!("expected a parse outcome: {other:?}"),
        }
        match cache.admit_trajectory(content_hash(""), 1, "") {
            Err(Outcome::Parse { message, at }) => {
                assert_eq!(message, "no functions found");
                assert_eq!(at, (0, 0));
            }
            other => panic!("expected a module outcome: {other:?}"),
        }
    }
}
