//! The trace-replay client: a windowed closed-loop driver that feeds a
//! resident server over in-process pipes and measures per-request
//! latency, pass by pass.
//!
//! Pass 0 is the *cold* pass (every distinct key is a miss); later
//! passes replay the identical request stream and must be served
//! entirely from the persistent cache — a miss on a warm pass is a
//! correctness failure, not a performance blip, and replay reports it
//! as an error. The optional sanitizer pass re-runs every distinct
//! allocation's rewritten program on the simulator with the register
//! sanitizer armed.

use crate::metrics::ServeMetrics;
use crate::oneshot::{self, ServeStrategy};
use crate::server::{serve_lines_metered, ServeConfig, ServeEnd};
use crate::trace::{self, MaterializedRequest, TraceFile};
use regbal_eval::{json, Json};
use regbal_sim::{SimConfig, Simulator, StopWhen};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------
// An in-process byte pipe (the transport between client and server).

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

#[derive(Default)]
struct PipeInner {
    state: Mutex<PipeState>,
    ready: Condvar,
}

/// The write end; dropping it signals EOF to the read end.
pub struct PipeWriter(Arc<PipeInner>);

/// The read end; blocks until bytes arrive or the writer drops.
pub struct PipeReader(Arc<PipeInner>);

/// An in-process unidirectional byte pipe.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let inner = Arc::new(PipeInner::default());
    (PipeWriter(inner.clone()), PipeReader(inner))
}

impl Write for PipeWriter {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        let mut state = self.0.state.lock().expect("pipe lock poisoned");
        state.buf.extend(bytes);
        self.0.ready.notify_all();
        Ok(bytes.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.0.state.lock().expect("pipe lock poisoned").closed = true;
        self.0.ready.notify_all();
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let mut state = self.0.state.lock().expect("pipe lock poisoned");
        while state.buf.is_empty() && !state.closed {
            state = self.0.ready.wait(state).expect("pipe lock poisoned");
        }
        let n = state.buf.len().min(out.len());
        for slot in out.iter_mut().take(n) {
            *slot = state.buf.pop_front().expect("n is bounded by the buffer length");
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// The replay driver.

/// Replay knobs.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// The server under test.
    pub serve: ServeConfig,
    /// Total passes over the trace (pass 0 cold, the rest warm).
    pub passes: usize,
    /// Requests in flight at once (1 = strict request/response
    /// lockstep; larger windows let the dispatcher form waves).
    pub window: usize,
    /// Honour the trace's arrival offsets (sleep until each request's
    /// `at_us`) instead of pushing at full speed.
    pub paced: bool,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            serve: ServeConfig::default(),
            passes: 2,
            window: 1,
            paced: false,
        }
    }
}

/// One pass's measurements.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// Wall-clock time of the pass, microseconds.
    pub wall_us: u64,
    /// Median request latency, microseconds (nearest rank).
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds (nearest rank).
    pub p99_us: u64,
    /// Requests per second over the pass.
    pub rps: f64,
    /// Response-cache hits this pass.
    pub hits: u64,
    /// Response-cache misses this pass.
    pub misses: u64,
    /// The raw response lines, in request order (byte-comparable
    /// across runs and worker counts).
    pub responses: Vec<String>,
}

/// Nearest-rank percentile of an unsorted latency sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Replays `trace` against a fresh resident server for
/// `config.passes` passes over one persistent cache, returning one
/// report per pass.
///
/// # Errors
///
/// Transport failures, a server that ends early, or — the warm-pass
/// contract — any cache miss on a pass after the first.
pub fn replay(trace: &TraceFile, config: &ReplayConfig) -> Result<Vec<PassReport>, String> {
    replay_with_metrics(trace, config, &ServeMetrics::default())
}

/// [`replay`], recording the server's backpressure metrics (queue
/// depth, admission waits, pool activity) into `metrics`.
///
/// # Errors
///
/// Exactly as [`replay`].
pub fn replay_with_metrics(
    trace: &TraceFile,
    config: &ReplayConfig,
    metrics: &ServeMetrics,
) -> Result<Vec<PassReport>, String> {
    let wire = trace::materialize(&trace.requests, trace.packets);
    let (request_tx, request_rx) = pipe();
    let (response_tx, response_rx) = pipe();
    std::thread::scope(|scope| {
        let serve_config = config.serve.clone();
        let server = scope.spawn(move || {
            // open_cache attaches the on-disk store when the config
            // names a cache directory — replayed traffic then warms a
            // persistent cache that outlives this server.
            let mut cache = serve_config.open_cache()?;
            serve_lines_metered(request_rx, response_tx, &serve_config, &mut cache, metrics)
        });

        // drive() owns both pipe ends: any return — success or error —
        // drops the write end, the server's reader sees EOF, and the
        // join below cannot hang.
        let reports = drive(&wire, config, request_tx, response_rx);
        match server.join().expect("server thread panicked") {
            Ok(ServeEnd::Shutdown) => reports,
            Ok(ServeEnd::Eof) => reports.and(Err("server ended before shutdown".to_string())),
            Err(e) => Err(format!("server transport error: {e}")),
        }
    })
}

/// The client side of one replay session (see [`replay`]).
fn drive(
    wire: &[MaterializedRequest],
    config: &ReplayConfig,
    mut request_tx: PipeWriter,
    response_rx: PipeReader,
) -> Result<Vec<PassReport>, String> {
    let mut responses = BufReader::new(response_rx);
    let mut read_line = |what: &str| -> Result<String, String> {
        let mut line = String::new();
        match responses.read_line(&mut line) {
            Ok(0) => Err(format!("server closed while awaiting {what}")),
            Ok(_) => Ok(line.trim_end().to_string()),
            Err(e) => Err(format!("reading {what}: {e}")),
        }
    };
    let mut reports = Vec::with_capacity(config.passes);
    let mut seen = (0u64, 0u64); // cumulative (hits, misses)
    let mut next_id = 0u64;
    for pass in 0..config.passes {
        let start = Instant::now();
        let window = config.window.max(1);
        let mut latencies = Vec::with_capacity(wire.len());
        let mut lines = Vec::with_capacity(wire.len());
        let mut sent: VecDeque<Instant> = VecDeque::new();
        let mut next = 0usize;
        while lines.len() < wire.len() {
            while sent.len() < window && next < wire.len() {
                let req = &wire[next];
                if config.paced {
                    let due = std::time::Duration::from_micros(req.at_us);
                    if let Some(wait) = due.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                }
                writeln!(request_tx, "{}", trace::request_line(next_id, req, false))
                    .map_err(|e| format!("sending request: {e}"))?;
                next_id += 1;
                sent.push_back(Instant::now());
                next += 1;
            }
            let line = read_line("a response")?;
            let issued = sent.pop_front().expect("a response implies a request");
            latencies.push(issued.elapsed().as_micros() as u64);
            lines.push(line);
        }
        let wall_us = start.elapsed().as_micros().max(1) as u64;

        writeln!(request_tx, r#"{{"id": "stats", "kind": "stats"}}"#)
            .map_err(|e| format!("requesting stats: {e}"))?;
        let stats_line = read_line("stats")?;
        let stats =
            json::parse(&stats_line).map_err(|e| format!("stats response was not JSON: {e}"))?;
        let stats = stats
            .get("stats")
            .ok_or("stats response had no `stats` member")?;
        let counter = |name: &str| {
            stats
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("stats is missing `{name}`"))
        };
        let (hits_total, misses_total) = (counter("hits")?, counter("misses")?);
        let (hits, misses) = (hits_total - seen.0, misses_total - seen.1);
        seen = (hits_total, misses_total);
        if pass > 0 && misses != 0 {
            return Err(format!(
                "warm pass {pass} missed the cache {misses} times — \
                 the persistent cache is not serving replayed requests"
            ));
        }

        latencies.sort_unstable();
        reports.push(PassReport {
            wall_us,
            p50_us: percentile(&latencies, 50.0),
            p99_us: percentile(&latencies, 99.0),
            rps: wire.len() as f64 / (wall_us as f64 / 1e6),
            hits,
            misses,
            responses: lines,
        });
    }
    writeln!(request_tx, r#"{{"id": "bye", "kind": "shutdown"}}"#)
        .map_err(|e| format!("requesting shutdown: {e}"))?;
    let ack = read_line("the shutdown ack")?;
    let ack = json::parse(&ack).map_err(|e| format!("bad shutdown ack: {e}"))?;
    if ack.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("unexpected shutdown ack: {}", ack.compact()));
    }
    Ok(reports)
}

/// The JSON member summarising one pass (for `BENCH_SERVE.json` and
/// `--out` reports).
pub fn pass_json(report: &PassReport) -> Json {
    Json::Obj(vec![
        ("wall_us".into(), Json::uint(report.wall_us)),
        ("p50_us".into(), Json::uint(report.p50_us)),
        ("p99_us".into(), Json::uint(report.p99_us)),
        ("rps".into(), Json::float((report.rps * 10.0).round() / 10.0)),
        ("hits".into(), Json::uint(report.hits)),
        ("misses".into(), Json::uint(report.misses)),
    ])
}

// ---------------------------------------------------------------------
// The sanitizer pass.

/// Re-runs every distinct successful allocation of the trace on the
/// simulator with the register sanitizer armed: the rewritten programs
/// execute `packets` iterations per thread over prepared packet
/// memory, and any cross-partition register touch is a violation.
///
/// Returns `(programs checked, infeasible requests skipped)`.
///
/// # Errors
///
/// The first program with sanitizer violations (or one that fails to
/// rewrite).
pub fn sanitize_check(trace: &TraceFile) -> Result<(usize, usize), String> {
    let wire = trace::materialize(&trace.requests, trace.packets);
    let mut distinct: Vec<&MaterializedRequest> = Vec::new();
    let mut keys: std::collections::HashSet<(u64, usize, usize, ServeStrategy)> =
        std::collections::HashSet::new();
    for req in &wire {
        if keys.insert((req.hash, req.nthd, req.nreg, req.strategy)) {
            distinct.push(req);
        }
    }
    let mut checked = 0usize;
    let mut skipped = 0usize;
    for req in distinct {
        let name = || {
            format!(
                "{} nthd {} nreg {} {}",
                req.kernel.name(),
                req.nthd,
                req.nreg,
                req.strategy.name()
            )
        };
        let roots = oneshot::load_module(&req.text)
            .map_err(|e| format!("{}: failed to load: {e:?}", name()))?;
        let funcs = oneshot::replicate(&roots, req.nthd);
        let verdict = match oneshot::allocate(&funcs, req.nreg, req.strategy) {
            Ok(v) => v,
            Err(_) => {
                // Infeasible under this budget — the server answers
                // with a structured error; nothing to simulate.
                skipped += 1;
                continue;
            }
        };
        let (rewritten, sanitizer) = verdict
            .compiled(&funcs)
            .map_err(|e| format!("{}: rewrite failed: {e}", name()))?;
        let mut sim = Simulator::new(SimConfig::default());
        // The trace builds every kernel at slot 0, so all replicas
        // read the slot-0 packet region; prepare it once.
        req.kernel
            .prepare(sim.memory_mut(), 0, trace.packets, trace.seed);
        for func in rewritten {
            sim.add_thread(func);
        }
        sim.enable_sanitizer(sanitizer);
        let report = sim.run(StopWhen::Iterations(u64::from(trace.packets)));
        let violations = report.sanitizer_violations().count();
        if violations != 0 {
            return Err(format!(
                "{}: {} sanitizer violation(s) under replay",
                name(),
                violations
            ));
        }
        checked += 1;
    }
    Ok((checked, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_workloads::TraceConfig;

    fn small_trace() -> TraceFile {
        TraceFile::generate(&TraceConfig {
            requests: 12,
            nreg_bounds: (32, 64),
            ..TraceConfig::default()
        })
    }

    #[test]
    fn pipes_carry_lines_and_signal_eof() {
        let (mut w, r) = pipe();
        writeln!(w, "hello").unwrap();
        drop(w);
        let mut lines = BufReader::new(r).lines();
        assert_eq!(lines.next().unwrap().unwrap(), "hello");
        assert!(lines.next().is_none());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn warm_passes_are_all_hits_and_transcripts_repeat() {
        let trace = small_trace();
        let config = ReplayConfig {
            serve: ServeConfig {
                sweep: vec![48], // mostly off-sweep: dedicated runs, still cached
                ..ServeConfig::default()
            },
            passes: 2,
            window: 4,
            ..ReplayConfig::default()
        };
        let reports = replay(&trace, &config).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[1].misses, 0, "pass 2 must be all hits");
        assert_eq!(reports[1].hits as usize, trace.requests.len());
        assert!(reports[0].misses > 0, "pass 1 must actually work");
        // Identical request stream, identical documents — only the
        // ids and cached flags may differ between passes.
        let strip = |line: &str| {
            let doc = json::parse(line).unwrap();
            doc.get("alloc").map(Json::pretty).unwrap_or_else(|| {
                doc.get("error").expect("alloc or error").pretty()
            })
        };
        let cold: Vec<String> = reports[0].responses.iter().map(|l| strip(l)).collect();
        let warm: Vec<String> = reports[1].responses.iter().map(|l| strip(l)).collect();
        assert_eq!(cold, warm);
    }

    #[test]
    fn worker_counts_do_not_change_response_bytes() {
        let trace = small_trace();
        let run = |workers: usize| {
            let config = ReplayConfig {
                serve: ServeConfig {
                    workers,
                    sweep: vec![48],
                    ..ServeConfig::default()
                },
                passes: 1,
                window: 6,
                ..ReplayConfig::default()
            };
            replay(&trace, &config).unwrap()[0].responses.clone()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn a_replay_over_a_cache_dir_restarts_warm() {
        let dir = std::env::temp_dir().join(format!(
            "regbal-replay-test-{}-warm",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let trace = small_trace();
        let config = ReplayConfig {
            serve: ServeConfig {
                sweep: vec![48],
                cache_dir: Some(dir.to_string_lossy().into_owned()),
                ..ServeConfig::default()
            },
            passes: 1,
            window: 4,
            ..ReplayConfig::default()
        };
        let cold = replay(&trace, &config).unwrap();
        assert!(cold[0].misses > 0, "the first replay must populate the store");
        // A second replay is a fresh server over the same directory:
        // its *first* pass must already be all hits, byte-identically.
        let metrics = ServeMetrics::default();
        let warm = replay_with_metrics(&trace, &config, &metrics).unwrap();
        assert_eq!(
            warm[0].misses, 0,
            "the restarted server should answer entirely from disk"
        );
        assert_eq!(cold[0].responses.len(), warm[0].responses.len());
        let strip = |line: &str| {
            let doc = json::parse(line).unwrap();
            doc.get("alloc").map(Json::pretty).unwrap_or_else(|| {
                doc.get("error").expect("alloc or error").pretty()
            })
        };
        let cold_docs: Vec<String> = cold[0].responses.iter().map(|l| strip(l)).collect();
        let warm_docs: Vec<String> = warm[0].responses.iter().map(|l| strip(l)).collect();
        assert_eq!(cold_docs, warm_docs, "reloaded documents diverged");
        assert!(metrics.snapshot().wait_samples > 0, "admissions were measured");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sanitizer_finds_no_violations_in_served_allocations() {
        let trace = TraceFile::generate(&TraceConfig {
            requests: 6,
            packets: 2,
            nreg_bounds: (48, 96),
            ..TraceConfig::default()
        });
        let (checked, _skipped) = sanitize_check(&trace).unwrap();
        assert!(checked > 0, "the sanitizer pass must actually run programs");
    }
}
