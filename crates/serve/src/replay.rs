//! The trace-replay client: a windowed closed-loop driver that feeds a
//! resident server over in-process pipes and measures per-request
//! latency, pass by pass.
//!
//! Pass 0 is the *cold* pass (every distinct key is a miss); later
//! passes replay the identical request stream and must be served
//! entirely from the persistent cache — a miss on a warm pass is a
//! correctness failure, not a performance blip, and replay reports it
//! as an error. The optional sanitizer pass re-runs every distinct
//! allocation's rewritten program on the simulator with the register
//! sanitizer armed.
//!
//! [`chaos_replay`] is the adversarial sibling: it drives the same
//! trace against a server armed with a seeded [`FaultPlan`] — disk
//! faults inside the server, mid-line client disconnects injected by
//! the replay client itself — across as many sessions as the faults
//! force, and enforces the fault plane's end-to-end invariant: every
//! admitted request is answered, every answer matches the fault-free
//! baseline (timeout errors excepted and counted), and a final
//! fault-free healing pass over the surviving `--cache-dir` still
//! serves the baseline documents.

use crate::faults::FaultSite;
use crate::metrics::ServeMetrics;
use crate::oneshot::{self, ServeStrategy};
use crate::server::{serve_lines_metered, ServeConfig, ServeEnd};
use crate::trace::{self, MaterializedRequest, TraceFile};
use regbal_eval::{json, Json};
use regbal_sim::{SimConfig, Simulator, StopWhen};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------
// An in-process byte pipe (the transport between client and server).

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

#[derive(Default)]
struct PipeInner {
    state: Mutex<PipeState>,
    ready: Condvar,
}

/// The write end; dropping it signals EOF to the read end.
pub struct PipeWriter(Arc<PipeInner>);

/// The read end; blocks until bytes arrive or the writer drops.
pub struct PipeReader(Arc<PipeInner>);

/// An in-process unidirectional byte pipe.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let inner = Arc::new(PipeInner::default());
    (PipeWriter(inner.clone()), PipeReader(inner))
}

impl Write for PipeWriter {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        let mut state = self.0.state.lock().expect("pipe lock poisoned");
        state.buf.extend(bytes);
        self.0.ready.notify_all();
        Ok(bytes.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.0.state.lock().expect("pipe lock poisoned").closed = true;
        self.0.ready.notify_all();
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let mut state = self.0.state.lock().expect("pipe lock poisoned");
        while state.buf.is_empty() && !state.closed {
            state = self.0.ready.wait(state).expect("pipe lock poisoned");
        }
        let n = state.buf.len().min(out.len());
        for slot in out.iter_mut().take(n) {
            *slot = state.buf.pop_front().expect("n is bounded by the buffer length");
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// The replay driver.

/// Replay knobs.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// The server under test.
    pub serve: ServeConfig,
    /// Total passes over the trace (pass 0 cold, the rest warm).
    pub passes: usize,
    /// Requests in flight at once (1 = strict request/response
    /// lockstep; larger windows let the dispatcher form waves).
    pub window: usize,
    /// Honour the trace's arrival offsets (sleep until each request's
    /// `at_us`) instead of pushing at full speed.
    pub paced: bool,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            serve: ServeConfig::default(),
            passes: 2,
            window: 1,
            paced: false,
        }
    }
}

/// One pass's measurements.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// Wall-clock time of the pass, microseconds.
    pub wall_us: u64,
    /// Median request latency, microseconds (nearest rank).
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds (nearest rank).
    pub p99_us: u64,
    /// Requests per second over the pass.
    pub rps: f64,
    /// Response-cache hits this pass.
    pub hits: u64,
    /// Response-cache misses this pass.
    pub misses: u64,
    /// The raw response lines, in request order (byte-comparable
    /// across runs and worker counts).
    pub responses: Vec<String>,
}

/// Nearest-rank percentile of an unsorted latency sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Replays `trace` against a fresh resident server for
/// `config.passes` passes over one persistent cache, returning one
/// report per pass.
///
/// # Errors
///
/// Transport failures, a server that ends early, or — the warm-pass
/// contract — any cache miss on a pass after the first.
pub fn replay(trace: &TraceFile, config: &ReplayConfig) -> Result<Vec<PassReport>, String> {
    replay_with_metrics(trace, config, &ServeMetrics::default())
}

/// [`replay`], recording the server's backpressure metrics (queue
/// depth, admission waits, pool activity) into `metrics`.
///
/// # Errors
///
/// Exactly as [`replay`].
pub fn replay_with_metrics(
    trace: &TraceFile,
    config: &ReplayConfig,
    metrics: &ServeMetrics,
) -> Result<Vec<PassReport>, String> {
    let wire = trace::materialize(&trace.requests, trace.packets);
    let (request_tx, request_rx) = pipe();
    let (response_tx, response_rx) = pipe();
    std::thread::scope(|scope| {
        let serve_config = config.serve.clone();
        let server = scope.spawn(move || {
            // open_cache attaches the on-disk store when the config
            // names a cache directory — replayed traffic then warms a
            // persistent cache that outlives this server.
            let mut cache = serve_config.open_cache()?;
            serve_lines_metered(request_rx, response_tx, &serve_config, &mut cache, metrics)
        });

        // drive() owns both pipe ends: any return — success or error —
        // drops the write end, the server's reader sees EOF, and the
        // join below cannot hang.
        let reports = drive(&wire, config, request_tx, response_rx);
        match server.join().expect("server thread panicked") {
            Ok(ServeEnd::Shutdown) => reports,
            Ok(ServeEnd::Eof) => reports.and(Err("server ended before shutdown".to_string())),
            Err(e) => Err(format!("server transport error: {e}")),
        }
    })
}

/// The client side of one replay session (see [`replay`]).
fn drive(
    wire: &[MaterializedRequest],
    config: &ReplayConfig,
    mut request_tx: PipeWriter,
    response_rx: PipeReader,
) -> Result<Vec<PassReport>, String> {
    let mut responses = BufReader::new(response_rx);
    let mut read_line = |what: &str| -> Result<String, String> {
        let mut line = String::new();
        match responses.read_line(&mut line) {
            Ok(0) => Err(format!("server closed while awaiting {what}")),
            Ok(_) => Ok(line.trim_end().to_string()),
            Err(e) => Err(format!("reading {what}: {e}")),
        }
    };
    let mut reports = Vec::with_capacity(config.passes);
    let mut seen = (0u64, 0u64); // cumulative (hits, misses)
    let mut next_id = 0u64;
    for pass in 0..config.passes {
        let start = Instant::now();
        let window = config.window.max(1);
        let mut latencies = Vec::with_capacity(wire.len());
        let mut lines = Vec::with_capacity(wire.len());
        let mut sent: VecDeque<Instant> = VecDeque::new();
        let mut next = 0usize;
        while lines.len() < wire.len() {
            while sent.len() < window && next < wire.len() {
                let req = &wire[next];
                if config.paced {
                    let due = std::time::Duration::from_micros(req.at_us);
                    if let Some(wait) = due.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                }
                writeln!(request_tx, "{}", trace::request_line(next_id, req, false))
                    .map_err(|e| format!("sending request: {e}"))?;
                next_id += 1;
                sent.push_back(Instant::now());
                next += 1;
            }
            let line = read_line("a response")?;
            let issued = sent.pop_front().expect("a response implies a request");
            latencies.push(issued.elapsed().as_micros() as u64);
            lines.push(line);
        }
        let wall_us = start.elapsed().as_micros().max(1) as u64;

        writeln!(request_tx, r#"{{"id": "stats", "kind": "stats"}}"#)
            .map_err(|e| format!("requesting stats: {e}"))?;
        let stats_line = read_line("stats")?;
        let stats =
            json::parse(&stats_line).map_err(|e| format!("stats response was not JSON: {e}"))?;
        let stats = stats
            .get("stats")
            .ok_or("stats response had no `stats` member")?;
        let counter = |name: &str| {
            stats
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("stats is missing `{name}`"))
        };
        let (hits_total, misses_total) = (counter("hits")?, counter("misses")?);
        let (hits, misses) = (hits_total - seen.0, misses_total - seen.1);
        seen = (hits_total, misses_total);
        if pass > 0 && misses != 0 {
            return Err(format!(
                "warm pass {pass} missed the cache {misses} times — \
                 the persistent cache is not serving replayed requests"
            ));
        }

        latencies.sort_unstable();
        reports.push(PassReport {
            wall_us,
            p50_us: percentile(&latencies, 50.0),
            p99_us: percentile(&latencies, 99.0),
            rps: wire.len() as f64 / (wall_us as f64 / 1e6),
            hits,
            misses,
            responses: lines,
        });
    }
    writeln!(request_tx, r#"{{"id": "bye", "kind": "shutdown"}}"#)
        .map_err(|e| format!("requesting shutdown: {e}"))?;
    let ack = read_line("the shutdown ack")?;
    let ack = json::parse(&ack).map_err(|e| format!("bad shutdown ack: {e}"))?;
    if ack.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("unexpected shutdown ack: {}", ack.compact()));
    }
    Ok(reports)
}

/// The JSON member summarising one pass (for `BENCH_SERVE.json` and
/// `--out` reports).
pub fn pass_json(report: &PassReport) -> Json {
    Json::Obj(vec![
        ("wall_us".into(), Json::uint(report.wall_us)),
        ("p50_us".into(), Json::uint(report.p50_us)),
        ("p99_us".into(), Json::uint(report.p99_us)),
        ("rps".into(), Json::float((report.rps * 10.0).round() / 10.0)),
        ("hits".into(), Json::uint(report.hits)),
        ("misses".into(), Json::uint(report.misses)),
    ])
}

// ---------------------------------------------------------------------
// Chaos replay: the fault plane's end-to-end gate.

/// What a chaos replay observed (see [`chaos_replay`]).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Trace requests replayed.
    pub requests: usize,
    /// Client sessions it took to answer them all (each injected
    /// disconnect ends a session; the next one resumes).
    pub sessions: usize,
    /// Full-line requests answered (always equals `requests` on
    /// success — a shortfall is an error, not a report).
    pub answered: usize,
    /// Mid-line client disconnects the plan injected.
    pub disconnects: u64,
    /// Torn half-lines the server admitted at EOF and answered with a
    /// structured `bad-json` error (one per disconnect that left
    /// bytes on the wire).
    pub partials: usize,
    /// Requests answered with an in-band `timeout` error (deadline
    /// expiries under injected reader stalls).
    pub timeouts: u64,
    /// The armed plan's per-site fire counts, human-readable.
    pub fault_summary: String,
    /// The chaos cache's final `stats` document (deterministic
    /// counters plus disk retry/GC totals).
    pub stats: Json,
    /// The healing pass's response lines in trace order: a fault-free
    /// server over the surviving `--cache-dir` (or the baseline
    /// transcript when the cache is memory-only). Feed these to
    /// `--verify`.
    pub heal_responses: Vec<String>,
}

/// Serves one in-process session: `client` writes request bytes into
/// the server's stdin and returns (dropping the write end — a client
/// that vanishes mid-line is just a closure that returns early); every
/// response line is collected until the server drains and exits.
fn session<F>(
    config: &ServeConfig,
    cache: &mut crate::cache::ServeCache,
    metrics: &ServeMetrics,
    client: F,
) -> Result<Vec<String>, String>
where
    F: FnOnce(&mut PipeWriter),
{
    let (mut request_tx, request_rx) = pipe();
    let (response_tx, response_rx) = pipe();
    std::thread::scope(|scope| {
        let server = scope
            .spawn(|| serve_lines_metered(request_rx, response_tx, config, cache, metrics));
        client(&mut request_tx);
        drop(request_tx);
        let mut lines = Vec::new();
        for line in BufReader::new(response_rx).lines() {
            lines.push(line.map_err(|e| format!("reading responses: {e}"))?);
        }
        match server.join().expect("server thread panicked") {
            Ok(_) => Ok(lines),
            Err(e) => Err(format!("server transport error: {e}")),
        }
    })
}

/// Strips a response line to its comparable document (the `alloc` or
/// `error` member) and the error code, if any.
fn response_doc(line: &str) -> Result<(String, Option<String>), String> {
    let doc = json::parse(line).map_err(|e| format!("response was not JSON: {e}"))?;
    let code = doc
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .map(str::to_string);
    let body = doc
        .get("alloc")
        .map(Json::pretty)
        .or_else(|| doc.get("error").map(Json::pretty))
        .ok_or_else(|| format!("response had neither alloc nor error: {line}"))?;
    Ok((body, code))
}

/// Replays `trace` against a server armed with `config.faults`,
/// enforcing the fault plane's invariant end to end.
///
/// Three phases:
///
/// 1. **Baseline** — a fault-free, memory-only server answers the whole
///    trace once; its stripped documents are the ground truth.
/// 2. **Chaos** — one persistent cache built from the faulted config
///    serves the trace across as many client sessions as the plan
///    forces. The client injects its own [`FaultSite::ClientDisconnect`]
///    faults by writing half a request line and vanishing; the torn
///    line is admitted at EOF and must be answered `bad-json`, and the
///    cut request is resent (fresh id) next session. Every full-line
///    answer must match the baseline document — except in-band
///    `timeout` errors, which are counted, not compared.
/// 3. **Healing** — when the config names a `--cache-dir`, a fresh
///    fault-free server over the surviving directory serves the whole
///    trace in one session; its documents must again equal the
///    baseline (corrupt or torn disk entries degrade to recomputed
///    misses, never to wrong answers).
///
/// # Errors
///
/// A missing fault plan, any admitted request left unanswered, any
/// non-timeout divergence from the baseline, a torn line answered with
/// anything but `bad-json`, a session loop that stops making progress,
/// or a healing pass that diverges.
pub fn chaos_replay(trace: &TraceFile, config: &ServeConfig) -> Result<ChaosReport, String> {
    let plan = config
        .faults
        .clone()
        .ok_or("chaos replay needs a fault plan (--faults) in the server config")?;
    let wire = trace::materialize(&trace.requests, trace.packets);

    // Phase 1: the fault-free baseline over a fresh memory-only cache.
    let mut base_config = config.clone();
    base_config.faults = None;
    base_config.deadline_ms = 0;
    base_config.cache_dir = None;
    base_config.cache_dir_cap = 0;
    let mut base_cache = base_config
        .open_cache()
        .map_err(|e| format!("opening the baseline cache: {e}"))?;
    let baseline = session(&base_config, &mut base_cache, &ServeMetrics::default(), |w| {
        for (i, req) in wire.iter().enumerate() {
            let _ = writeln!(w, "{}", trace::request_line(i as u64, req, false));
        }
    })?;
    if baseline.len() != wire.len() {
        return Err(format!(
            "baseline answered {} of {} requests",
            baseline.len(),
            wire.len()
        ));
    }
    let base_docs: Vec<String> = baseline
        .iter()
        .map(|line| response_doc(line).map(|(body, _)| body))
        .collect::<Result<_, _>>()?;

    // Phase 2: the chaos run — one persistent cache, many sessions.
    let mut cache = config
        .open_cache()
        .map_err(|e| format!("opening the chaos cache: {e}"))?;
    let metrics = ServeMetrics::default();
    let mut next = 0usize;
    let mut next_id = wire.len() as u64;
    let mut sessions = 0usize;
    let mut disconnects = 0u64;
    let mut partials = 0usize;
    let mut answered = 0usize;
    let mut timeouts = 0u64;
    // A plan that always disconnects would never advance: after a
    // zero-progress session the first request is sent without
    // consulting the plan, so every session answers at least one.
    let mut force_first = false;
    let session_cap = wire.len() * 2 + 8;
    while next < wire.len() {
        sessions += 1;
        if sessions > session_cap {
            return Err(format!(
                "chaos replay exceeded {session_cap} sessions with requests still unanswered"
            ));
        }
        let start = next;
        let mut sent_full: Vec<usize> = Vec::new();
        let mut cut = false;
        let responses = session(config, &mut cache, &metrics, |w| {
            for (i, req) in wire.iter().enumerate().skip(start) {
                let line = trace::request_line(next_id, req, false);
                next_id += 1;
                let consult = !force_first || i > start;
                if consult && plan.fire(FaultSite::ClientDisconnect) {
                    // The client vanishes mid-line: half the bytes, no
                    // newline, write end dropped. The server admits the
                    // torn prefix at EOF and must still answer it.
                    let bytes = line.as_bytes();
                    let _ = w.write_all(&bytes[..bytes.len() / 2]);
                    disconnects += 1;
                    cut = true;
                    return;
                }
                let _ = writeln!(w, "{line}");
                sent_full.push(i);
            }
        })?;
        let expected = sent_full.len() + usize::from(cut);
        if responses.len() != expected {
            return Err(format!(
                "session {sessions}: {expected} admitted request(s) but {} response(s) — \
                 an admitted request went unanswered",
                responses.len()
            ));
        }
        for (k, wi) in sent_full.iter().enumerate() {
            let (body, code) = response_doc(&responses[k])?;
            if code.as_deref() == Some("timeout") {
                timeouts += 1;
            } else if body != base_docs[*wi] {
                return Err(format!(
                    "request {wi}: chaos response diverged from the fault-free baseline"
                ));
            }
            answered += 1;
        }
        if cut {
            partials += 1;
            let (_, code) = response_doc(&responses[expected - 1])?;
            if code.as_deref() != Some("bad-json") {
                return Err(format!(
                    "session {sessions}: the torn half-line was answered with {code:?}, \
                     expected a bad-json error"
                ));
            }
        }
        force_first = sent_full.is_empty() && cut;
        next = start + sent_full.len();
    }
    let stats = cache.stats_json();
    drop(cache);

    // Phase 3: the healing pass over whatever the chaos run left on
    // disk — faults disarmed, one session, baseline documents required.
    let heal_responses = if config.cache_dir.is_some() {
        let mut heal_config = config.clone();
        heal_config.faults = None;
        heal_config.deadline_ms = 0;
        let mut heal_cache = heal_config
            .open_cache()
            .map_err(|e| format!("reopening the cache dir to heal: {e}"))?;
        let healed = session(&heal_config, &mut heal_cache, &ServeMetrics::default(), |w| {
            for (i, req) in wire.iter().enumerate() {
                let _ = writeln!(w, "{}", trace::request_line(i as u64, req, false));
            }
        })?;
        if healed.len() != wire.len() {
            return Err(format!(
                "healing pass answered {} of {} requests",
                healed.len(),
                wire.len()
            ));
        }
        for (i, line) in healed.iter().enumerate() {
            let (body, _) = response_doc(line)?;
            if body != base_docs[i] {
                return Err(format!(
                    "healed response {i} diverged from the fault-free baseline"
                ));
            }
        }
        healed
    } else {
        baseline
    };

    Ok(ChaosReport {
        requests: wire.len(),
        sessions,
        answered,
        disconnects,
        partials,
        timeouts,
        fault_summary: plan.summary(),
        stats,
        heal_responses,
    })
}

/// The `regbal-serve-chaos/1` document summarising a chaos replay (for
/// `--out`).
pub fn chaos_json(report: &ChaosReport) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str("regbal-serve-chaos/1")),
        ("requests".into(), Json::uint(report.requests as u64)),
        ("answered".into(), Json::uint(report.answered as u64)),
        ("sessions".into(), Json::uint(report.sessions as u64)),
        ("disconnects".into(), Json::uint(report.disconnects)),
        ("partials".into(), Json::uint(report.partials as u64)),
        ("timeouts".into(), Json::uint(report.timeouts)),
        ("faults".into(), Json::str(&report.fault_summary)),
        ("stats".into(), report.stats.clone()),
    ])
}

// ---------------------------------------------------------------------
// The sanitizer pass.

/// Re-runs every distinct successful allocation of the trace on the
/// simulator with the register sanitizer armed: the rewritten programs
/// execute `packets` iterations per thread over prepared packet
/// memory, and any cross-partition register touch is a violation.
///
/// Returns `(programs checked, infeasible requests skipped)`.
///
/// # Errors
///
/// The first program with sanitizer violations (or one that fails to
/// rewrite).
pub fn sanitize_check(trace: &TraceFile) -> Result<(usize, usize), String> {
    let wire = trace::materialize(&trace.requests, trace.packets);
    let mut distinct: Vec<&MaterializedRequest> = Vec::new();
    let mut keys: std::collections::HashSet<(u64, usize, usize, ServeStrategy)> =
        std::collections::HashSet::new();
    for req in &wire {
        if keys.insert((req.hash, req.nthd, req.nreg, req.strategy)) {
            distinct.push(req);
        }
    }
    let mut checked = 0usize;
    let mut skipped = 0usize;
    for req in distinct {
        let name = || {
            format!(
                "{} nthd {} nreg {} {}",
                req.kernel.name(),
                req.nthd,
                req.nreg,
                req.strategy.name()
            )
        };
        let roots = oneshot::load_module(&req.text)
            .map_err(|e| format!("{}: failed to load: {e:?}", name()))?;
        let funcs = oneshot::replicate(&roots, req.nthd);
        let verdict = match oneshot::allocate(&funcs, req.nreg, req.strategy) {
            Ok(v) => v,
            Err(_) => {
                // Infeasible under this budget — the server answers
                // with a structured error; nothing to simulate.
                skipped += 1;
                continue;
            }
        };
        let (rewritten, sanitizer) = verdict
            .compiled(&funcs)
            .map_err(|e| format!("{}: rewrite failed: {e}", name()))?;
        let mut sim = Simulator::new(SimConfig::default());
        // The trace builds every kernel at slot 0, so all replicas
        // read the slot-0 packet region; prepare it once.
        req.kernel
            .prepare(sim.memory_mut(), 0, trace.packets, trace.seed);
        for func in rewritten {
            sim.add_thread(func);
        }
        sim.enable_sanitizer(sanitizer);
        let report = sim.run(StopWhen::Iterations(u64::from(trace.packets)));
        let violations = report.sanitizer_violations().count();
        if violations != 0 {
            return Err(format!(
                "{}: {} sanitizer violation(s) under replay",
                name(),
                violations
            ));
        }
        checked += 1;
    }
    Ok((checked, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use regbal_workloads::TraceConfig;

    fn small_trace() -> TraceFile {
        TraceFile::generate(&TraceConfig {
            requests: 12,
            nreg_bounds: (32, 64),
            ..TraceConfig::default()
        })
    }

    #[test]
    fn pipes_carry_lines_and_signal_eof() {
        let (mut w, r) = pipe();
        writeln!(w, "hello").unwrap();
        drop(w);
        let mut lines = BufReader::new(r).lines();
        assert_eq!(lines.next().unwrap().unwrap(), "hello");
        assert!(lines.next().is_none());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn warm_passes_are_all_hits_and_transcripts_repeat() {
        let trace = small_trace();
        let config = ReplayConfig {
            serve: ServeConfig {
                sweep: vec![48], // mostly off-sweep: dedicated runs, still cached
                ..ServeConfig::default()
            },
            passes: 2,
            window: 4,
            ..ReplayConfig::default()
        };
        let reports = replay(&trace, &config).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[1].misses, 0, "pass 2 must be all hits");
        assert_eq!(reports[1].hits as usize, trace.requests.len());
        assert!(reports[0].misses > 0, "pass 1 must actually work");
        // Identical request stream, identical documents — only the
        // ids and cached flags may differ between passes.
        let strip = |line: &str| {
            let doc = json::parse(line).unwrap();
            doc.get("alloc").map(Json::pretty).unwrap_or_else(|| {
                doc.get("error").expect("alloc or error").pretty()
            })
        };
        let cold: Vec<String> = reports[0].responses.iter().map(|l| strip(l)).collect();
        let warm: Vec<String> = reports[1].responses.iter().map(|l| strip(l)).collect();
        assert_eq!(cold, warm);
    }

    #[test]
    fn worker_counts_do_not_change_response_bytes() {
        let trace = small_trace();
        let run = |workers: usize| {
            let config = ReplayConfig {
                serve: ServeConfig {
                    workers,
                    sweep: vec![48],
                    ..ServeConfig::default()
                },
                passes: 1,
                window: 6,
                ..ReplayConfig::default()
            };
            replay(&trace, &config).unwrap()[0].responses.clone()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn a_replay_over_a_cache_dir_restarts_warm() {
        let dir = std::env::temp_dir().join(format!(
            "regbal-replay-test-{}-warm",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let trace = small_trace();
        let config = ReplayConfig {
            serve: ServeConfig {
                sweep: vec![48],
                cache_dir: Some(dir.to_string_lossy().into_owned()),
                ..ServeConfig::default()
            },
            passes: 1,
            window: 4,
            ..ReplayConfig::default()
        };
        let cold = replay(&trace, &config).unwrap();
        assert!(cold[0].misses > 0, "the first replay must populate the store");
        // A second replay is a fresh server over the same directory:
        // its *first* pass must already be all hits, byte-identically.
        let metrics = ServeMetrics::default();
        let warm = replay_with_metrics(&trace, &config, &metrics).unwrap();
        assert_eq!(
            warm[0].misses, 0,
            "the restarted server should answer entirely from disk"
        );
        assert_eq!(cold[0].responses.len(), warm[0].responses.len());
        let strip = |line: &str| {
            let doc = json::parse(line).unwrap();
            doc.get("alloc").map(Json::pretty).unwrap_or_else(|| {
                doc.get("error").expect("alloc or error").pretty()
            })
        };
        let cold_docs: Vec<String> = cold[0].responses.iter().map(|l| strip(l)).collect();
        let warm_docs: Vec<String> = warm[0].responses.iter().map(|l| strip(l)).collect();
        assert_eq!(cold_docs, warm_docs, "reloaded documents diverged");
        assert!(metrics.snapshot().wait_samples > 0, "admissions were measured");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_chaos_replay_answers_everything_and_heals() {
        let dir = std::env::temp_dir().join(format!(
            "regbal-replay-test-{}-chaos",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let trace = small_trace();
        let plan = FaultPlan::parse_spec(
            "seed=11,write_fail=200,write_short=150,read_corrupt=200,disconnect=250",
        )
        .unwrap();
        let config = ServeConfig {
            sweep: vec![48],
            cache_dir: Some(dir.to_string_lossy().into_owned()),
            faults: Some(std::sync::Arc::new(plan)),
            ..ServeConfig::default()
        };
        let report = chaos_replay(&trace, &config).unwrap();
        assert_eq!(report.requests, trace.requests.len());
        assert_eq!(report.answered, report.requests, "every request is answered");
        assert!(
            report.disconnects > 0,
            "a 250‰ disconnect rate over 12 requests should fire: {}",
            report.fault_summary
        );
        assert_eq!(report.sessions, 1 + report.disconnects as usize);
        assert_eq!(report.heal_responses.len(), report.requests);
        let doc = chaos_json(&report);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("regbal-serve-chaos/1")
        );
        assert_eq!(
            doc.get("answered").and_then(Json::as_u64),
            Some(report.requests as u64)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_relentless_disconnector_cannot_stall_chaos_replay() {
        // disconnect=1000‰ cuts every consulted request; only the
        // zero-progress guard (force-send after an empty session)
        // lets the replay finish.
        let trace = TraceFile::generate(&TraceConfig {
            requests: 5,
            nreg_bounds: (32, 64),
            ..TraceConfig::default()
        });
        let plan = FaultPlan::parse_spec("seed=3,disconnect=1000").unwrap();
        let config = ServeConfig {
            sweep: vec![48],
            faults: Some(std::sync::Arc::new(plan)),
            ..ServeConfig::default()
        };
        let report = chaos_replay(&trace, &config).unwrap();
        assert_eq!(report.answered, report.requests);
        assert_eq!(report.partials, report.disconnects as usize);
        assert!(report.sessions <= trace.requests.len() * 2 + 8);
    }

    #[test]
    fn sanitizer_finds_no_violations_in_served_allocations() {
        let trace = TraceFile::generate(&TraceConfig {
            requests: 6,
            packets: 2,
            nreg_bounds: (48, 96),
            ..TraceConfig::default()
        });
        let (checked, _skipped) = sanitize_check(&trace).unwrap();
        assert!(checked > 0, "the sanitizer pass must actually run programs");
    }
}
