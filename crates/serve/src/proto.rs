//! The `regbal-serve/2` wire protocol: request parsing and response
//! framing.
//!
//! The transport is line-delimited JSON — one request document per
//! input line, one response document per output line. Four request
//! kinds exist:
//!
//! * `alloc` — allocate a module (`func`: textual `regbal-ir` source,
//!   or `hash`: the content hash of a module this server has already
//!   seen) for `nthd` replicas under `nreg` registers with `strategy`
//!   (`balanced` | `balanced-spill` | `ladder`);
//! * `batch` — an array of `alloc` requests answered as one response;
//! * `stats` — a snapshot of the server's cache counters; with
//!   `"metrics": true`, the response also carries the (wall-clock,
//!   hence non-deterministic) backpressure metrics member;
//! * `shutdown` — drain and stop serving: the server stops accepting,
//!   finishes every request admitted before the ack, and answers the
//!   ack last. When the server was started with `--shutdown-token`,
//!   the request must carry a matching `token` string member; a
//!   missing or wrong token gets an in-band `unauthorized` error and
//!   the server keeps serving.
//!
//! Requests may carry an optional `schema` member; `regbal-serve/1`
//! and `regbal-serve/2` are both accepted (the `/1` request surface is
//! a strict subset), anything else is a `bad-request`. Responses are
//! always stamped `regbal-serve/2`.
//!
//! A malformed line never kills the server: it produces an error
//! *response* with a stable machine-readable `code` (`bad-json`,
//! `bad-request`, `parse-error` with the `regbal-ir` line/column,
//! `unknown-hash`, or the [`regbal_core::AllocError`] code taxonomy)
//! and the server keeps reading. Only a transport failure (bind or
//! I/O error) is fatal.

use crate::oneshot::ServeStrategy;
use regbal_eval::Json;

/// The schema tag stamped on every top-level response line.
pub const SCHEMA: &str = "regbal-serve/2";

/// Request schema tags this server accepts (`/1` requests are a
/// strict subset of `/2`, so both parse identically).
pub const ACCEPTED_SCHEMAS: [&str; 2] = ["regbal-serve/1", "regbal-serve/2"];

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The content hash of a module's source text: 64-bit FNV-1a over the
/// exact request bytes. Computed once at admission and threaded through
/// the cache key, the response echo and the stats counters.
pub fn content_hash(text: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The wire form of a content hash (16 lowercase hex digits).
pub fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses a wire-form content hash back to its value.
pub fn parse_hash(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Where an `alloc` request's module comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// Inline module source text.
    Text(String),
    /// Content-addressed: only meaningful if the server still holds a
    /// trajectory or response for this hash.
    HashOnly,
}

/// One admitted `alloc` request (possibly a `batch` element).
#[derive(Debug, Clone, PartialEq)]
pub struct AllocRequest {
    /// The client's `id` member, echoed verbatim ([`Json::Null`] when
    /// absent).
    pub id: Json,
    /// The module source.
    pub source: Source,
    /// Content hash of the module text, computed at admission (or
    /// taken from the `hash` member for content-addressed requests).
    pub hash: u64,
    /// Module replicas sharing the register file (like passing the
    /// same file `nthd` times to `regbal alloc`). Default 1.
    pub nthd: usize,
    /// Register-file size. Default 128 (the `regbal alloc` default).
    pub nreg: usize,
    /// Allocation strategy. Default `balanced`.
    pub strategy: ServeStrategy,
}

impl AllocRequest {
    /// The persistent-cache key of this request.
    pub fn key(&self) -> (u64, usize, usize, ServeStrategy) {
        (self.hash, self.nthd, self.nreg, self.strategy)
    }
}

/// A request-level failure: the line (or batch element) could not be
/// admitted. Becomes an error *response*, never a server exit.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError {
    /// The offending request's `id`, when one could be read.
    pub id: Json,
    /// Stable machine-readable code.
    pub code: String,
    /// Human-readable message.
    pub message: String,
    /// Line/column into the request's `func` text, for `parse-error`.
    pub at: Option<(usize, usize)>,
}

impl ProtoError {
    /// A `bad-request` error (missing or ill-typed members).
    pub fn bad_request(id: Json, message: impl Into<String>) -> ProtoError {
        ProtoError {
            id,
            code: "bad-request".into(),
            message: message.into(),
            at: None,
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A single allocation (a malformed one still carries its error so
    /// the response stream stays aligned with the request stream).
    Alloc(Result<AllocRequest, ProtoError>),
    /// A batch of allocations answered as one response line.
    Batch {
        /// The batch envelope's `id`.
        id: Json,
        /// The elements, each admitted or failed independently.
        requests: Vec<Result<AllocRequest, ProtoError>>,
    },
    /// Counter snapshot.
    Stats {
        /// The request's `id`.
        id: Json,
        /// Include the wall-clock backpressure metrics member (off by
        /// default: those numbers are non-deterministic, and leaving
        /// them out keeps plain `stats` transcripts byte-comparable).
        metrics: bool,
    },
    /// Stop serving after acknowledging.
    Shutdown {
        /// The request's `id`.
        id: Json,
        /// The request's `token` member, checked against the server's
        /// `--shutdown-token` (when one is configured).
        token: Option<String>,
    },
}

fn member_id(doc: &Json) -> Json {
    doc.get("id").cloned().unwrap_or(Json::Null)
}

fn usize_member(doc: &Json, key: &str, default: usize) -> Result<usize, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => match v.as_u64() {
            Some(n) if (1..=1 << 20).contains(&n) => Ok(n as usize),
            _ => Err(format!("`{key}` must be an integer in 1..=2^20")),
        },
    }
}

fn parse_alloc(doc: &Json) -> Result<AllocRequest, ProtoError> {
    let id = member_id(doc);
    let err = |m: String| ProtoError::bad_request(id.clone(), m);
    let nthd = usize_member(doc, "nthd", 1).map_err(err)?;
    let nreg = usize_member(doc, "nreg", 128).map_err(err)?;
    let strategy = match doc.get("strategy") {
        None => ServeStrategy::Balanced,
        Some(v) => v
            .as_str()
            .ok_or_else(|| err("`strategy` must be a string".into()))
            .and_then(|s| ServeStrategy::parse(s).map_err(err))?,
    };
    let (source, hash) = match (doc.get("func"), doc.get("hash")) {
        (Some(_), Some(_)) => {
            return Err(err("give `func` or `hash`, not both".into()));
        }
        (Some(f), None) => {
            let text = f
                .as_str()
                .ok_or_else(|| err("`func` must be a string".into()))?;
            (Source::Text(text.to_string()), content_hash(text))
        }
        (None, Some(h)) => {
            let hex = h
                .as_str()
                .and_then(parse_hash)
                .ok_or_else(|| err("`hash` must be 16 hex digits".into()))?;
            (Source::HashOnly, hex)
        }
        (None, None) => return Err(err("an alloc request needs `func` or `hash`".into())),
    };
    Ok(AllocRequest {
        id,
        source,
        hash,
        nthd,
        nreg,
        strategy,
    })
}

/// Parses one request line. A line that is not a JSON object with a
/// known `kind` is reported as a single failed `alloc` (so it gets
/// exactly one error response).
pub fn parse_request(line: &str) -> Request {
    let doc = match regbal_eval::json::parse(line) {
        Ok(doc) => doc,
        Err(e) => {
            return Request::Alloc(Err(ProtoError {
                id: Json::Null,
                code: "bad-json".into(),
                message: format!("request line is not valid JSON: {e}"),
                at: None,
            }));
        }
    };
    let id = member_id(&doc);
    if let Some(schema) = doc.get("schema") {
        let known = schema
            .as_str()
            .is_some_and(|s| ACCEPTED_SCHEMAS.contains(&s));
        if !known {
            return Request::Alloc(Err(ProtoError::bad_request(
                id,
                format!(
                    "unsupported request schema {} (accepted: {})",
                    schema.compact(),
                    ACCEPTED_SCHEMAS.join(", ")
                ),
            )));
        }
    }
    match doc.get("kind").and_then(Json::as_str) {
        Some("alloc") | None => Request::Alloc(parse_alloc(&doc)),
        Some("batch") => {
            let Some(items) = doc.get("requests").and_then(Json::as_arr) else {
                return Request::Batch {
                    id: id.clone(),
                    requests: vec![Err(ProtoError::bad_request(
                        id,
                        "a batch needs a `requests` array",
                    ))],
                };
            };
            Request::Batch {
                id,
                requests: items.iter().map(parse_alloc).collect(),
            }
        }
        Some("stats") => Request::Stats {
            id,
            metrics: doc.get("metrics").and_then(Json::as_bool) == Some(true),
        },
        Some("shutdown") => Request::Shutdown {
            id,
            token: doc
                .get("token")
                .and_then(Json::as_str)
                .map(str::to_string),
        },
        Some(other) => Request::Alloc(Err(ProtoError::bad_request(
            id,
            format!("unknown request kind `{other}`"),
        ))),
    }
}

/// The `error` member of a failed response.
pub fn error_json(code: &str, message: &str, at: Option<(usize, usize)>) -> Json {
    let mut members = vec![
        ("code".into(), Json::str(code)),
        ("message".into(), Json::str(message)),
    ];
    if let Some((line, col)) = at {
        members.push(("line".into(), Json::uint(line as u64)));
        members.push(("col".into(), Json::uint(col as u64)));
    }
    Json::Obj(members)
}

/// Frames `body` members as a top-level response line: the schema tag
/// first, then the body.
pub fn response(body: Vec<(String, Json)>) -> Json {
    let mut members = vec![("schema".to_string(), Json::str(SCHEMA))];
    members.extend(body);
    Json::Obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        // FNV-1a published vectors.
        assert_eq!(content_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(content_hash("func a {}"), content_hash("func b {}"));
        let h = content_hash("x");
        assert_eq!(parse_hash(&hash_hex(h)), Some(h));
        assert_eq!(parse_hash("nope"), None);
    }

    #[test]
    fn alloc_requests_parse_with_defaults() {
        let r = parse_request(r#"{"id": 7, "kind": "alloc", "func": "func t {}"}"#);
        let Request::Alloc(Ok(req)) = r else {
            panic!("expected an admitted alloc: {r:?}");
        };
        assert_eq!(req.id, Json::uint(7));
        assert_eq!(req.nthd, 1);
        assert_eq!(req.nreg, 128);
        assert_eq!(req.strategy, ServeStrategy::Balanced);
        assert_eq!(req.hash, content_hash("func t {}"));
        assert_eq!(req.source, Source::Text("func t {}".into()));
    }

    #[test]
    fn hash_only_requests_carry_the_hash() {
        let h = hash_hex(content_hash("func t {}"));
        let line = format!(
            r#"{{"kind": "alloc", "hash": "{h}", "nthd": 4, "nreg": 64, "strategy": "ladder"}}"#
        );
        let Request::Alloc(Ok(req)) = parse_request(&line) else {
            panic!("expected an admitted alloc");
        };
        assert_eq!(req.source, Source::HashOnly);
        assert_eq!(req.hash, content_hash("func t {}"));
        assert_eq!(req.nthd, 4);
        assert_eq!(req.nreg, 64);
        assert_eq!(req.strategy, ServeStrategy::Ladder);
    }

    #[test]
    fn malformed_lines_become_stable_error_codes() {
        let codes = |line: &str| match parse_request(line) {
            Request::Alloc(Err(e)) => e.code,
            other => panic!("expected an error for {line:?}: {other:?}"),
        };
        assert_eq!(codes("not json at all"), "bad-json");
        assert_eq!(codes(r#"{"kind": "frobnicate"}"#), "bad-request");
        assert_eq!(codes(r#"{"kind": "alloc"}"#), "bad-request");
        assert_eq!(
            codes(r#"{"kind": "alloc", "func": "f", "hash": "0000000000000000"}"#),
            "bad-request"
        );
        assert_eq!(
            codes(r#"{"kind": "alloc", "func": "f", "nreg": 0}"#),
            "bad-request"
        );
        assert_eq!(
            codes(r#"{"kind": "alloc", "func": "f", "strategy": "chaos"}"#),
            "bad-request"
        );
    }

    #[test]
    fn batches_admit_elements_independently() {
        let line = r#"{"id": 1, "kind": "batch", "requests": [
            {"id": 2, "func": "func t {}"},
            {"id": 3}
        ]}"#
        .replace('\n', " ");
        let Request::Batch { id, requests } = parse_request(&line) else {
            panic!("expected a batch");
        };
        assert_eq!(id, Json::uint(1));
        assert_eq!(requests.len(), 2);
        assert!(requests[0].is_ok());
        assert_eq!(requests[1].as_ref().unwrap_err().code, "bad-request");
        assert_eq!(requests[1].as_ref().unwrap_err().id, Json::uint(3));
    }

    #[test]
    fn control_requests_parse() {
        assert_eq!(
            parse_request(r#"{"id": 9, "kind": "stats"}"#),
            Request::Stats {
                id: Json::uint(9),
                metrics: false
            }
        );
        assert_eq!(
            parse_request(r#"{"id": 9, "kind": "stats", "metrics": true}"#),
            Request::Stats {
                id: Json::uint(9),
                metrics: true
            }
        );
        assert_eq!(
            parse_request(r#"{"kind": "shutdown"}"#),
            Request::Shutdown {
                id: Json::Null,
                token: None
            }
        );
        assert_eq!(
            parse_request(r#"{"kind": "shutdown", "token": "s3cret"}"#),
            Request::Shutdown {
                id: Json::Null,
                token: Some("s3cret".into())
            }
        );
    }

    #[test]
    fn request_schema_tags_are_checked_when_present() {
        for accepted in ACCEPTED_SCHEMAS {
            let line = format!(r#"{{"schema": "{accepted}", "kind": "stats"}}"#);
            assert!(matches!(parse_request(&line), Request::Stats { .. }));
        }
        match parse_request(r#"{"schema": "regbal-serve/9", "kind": "stats"}"#) {
            Request::Alloc(Err(e)) => {
                assert_eq!(e.code, "bad-request");
                assert!(e.message.contains("unsupported request schema"));
            }
            other => panic!("expected a schema rejection: {other:?}"),
        }
    }
}
