//! Backpressure and observability counters for the resident server.
//!
//! The determinism contract splits the server's numbers in two. Cache
//! counters (hits, misses, descents) are functions of the admitted
//! request stream and live in [`crate::cache::Counters`] — they are
//! byte-identical at any worker count and appear in every `stats`
//! response. Everything in this module is *wall-clock shaped*: queue
//! depths, admission waits, deferred sends, connection churn. Those
//! numbers depend on scheduling and arrival timing, so they are kept
//! out of the default `stats` response (transcripts stay comparable)
//! and surfaced only on request (`{"kind": "stats", "metrics": true}`)
//! or on exit (`--metrics`).
//!
//! Admission wait is measured on the reader threads: the time from a
//! parsed request line to its acceptance by the bounded queue. Under
//! light load it is ~0; once the wave pipeline saturates, the queue
//! fills, `try_send` fails (a *deferred* admission) and the reader
//! blocks — exactly the paper's shared-pool contention, measured at
//! the serving layer. Waits are recorded into a bounded **reservoir**
//! of [`ServeMetrics::MAX_SAMPLES`] samples (Algorithm R with a fixed
//! seed, so the kept set is a deterministic function of the admission
//! sequence): once the buffer fills, each new wait *replaces* a random
//! slot with probability `cap/n` instead of being dropped, so the
//! p50/p99 of a long run reflect the whole run, not its first minutes.

use regbal_eval::pool::PoolMeter;
use regbal_eval::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-connection counters, reported in the `--metrics` exit summary.
#[derive(Debug, Default, Clone)]
pub struct ConnCounters {
    /// Request lines admitted from this connection.
    pub requests: u64,
    /// Response lines written to this connection.
    pub responses: u64,
    /// Admissions that found the queue full and blocked.
    pub deferred: u64,
    /// Largest single admission wait, microseconds.
    pub max_wait_us: u64,
}

/// Shared wall-clock metrics for one server instance. All methods take
/// `&self`; reader threads, the accept loop and the dispatcher all
/// write concurrently.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests currently sitting in the admission queue.
    queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    queue_high_water: AtomicU64,
    /// Admissions that found the queue full and blocked the transport.
    deferred: AtomicU64,
    /// Connections refused at accept time (`--max-conns`).
    rejected: AtomicU64,
    /// Connections accepted over the server's lifetime.
    connections: AtomicU64,
    /// Connections dropped on a read or write error (logged, served
    /// around — never fatal).
    dropped: AtomicU64,
    /// Admission-wait reservoir, microseconds (bounded; see
    /// [`ServeMetrics::MAX_SAMPLES`]).
    waits: Mutex<Vec<u64>>,
    /// Total admission waits observed (including those the reservoir
    /// replaced or declined — the `n` of Algorithm R).
    waits_total: AtomicU64,
    /// Requests answered with an in-band `timeout` error because they
    /// exceeded `--deadline-ms` before dispatch.
    timeouts: AtomicU64,
    /// Work-stealing pool counters (waves dispatched, tasks computed,
    /// largest wave).
    pub pool: PoolMeter,
    /// Per-connection counters, keyed by connection id.
    conns: Mutex<Vec<(u64, ConnCounters)>>,
}

/// A point-in-time summary of [`ServeMetrics`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// High-water mark of the admission queue depth.
    pub queue_depth_high_water: u64,
    /// Median admission wait, microseconds (nearest rank).
    pub admission_wait_p50_us: u64,
    /// 99th-percentile admission wait, microseconds (nearest rank).
    pub admission_wait_p99_us: u64,
    /// Admissions that found the queue full and blocked.
    pub deferred: u64,
    /// Connections refused at accept time.
    pub rejected: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections dropped on IO errors.
    pub dropped: u64,
    /// Requests answered with an in-band `timeout` error.
    pub timeouts: u64,
    /// Admission waits observed (the reservoir summarises all of them).
    pub wait_samples: u64,
    /// Pool waves dispatched.
    pub pool_waves: u64,
    /// Pool tasks computed.
    pub pool_tasks: u64,
    /// Largest single pool wave, in tasks.
    pub pool_max_wave: u64,
}

/// The fixed seed behind the sampling reservoir: the kept sample set
/// is a pure function of the observation sequence, so two identical
/// runs report identical percentiles.
const RESERVOIR_SEED: u64 = 0x5eed_ba1a_9ce0_11e5;

/// One step of deterministic reservoir sampling (Algorithm R): `value`
/// is observation number `n` (0-based). While the buffer is below
/// `cap` it is simply kept; afterwards it replaces a pseudorandom slot
/// with probability `cap / (n + 1)`, giving every observation of the
/// stream an equal chance of being in the final sample.
pub fn reservoir_insert(buf: &mut Vec<u64>, cap: usize, n: u64, value: u64) {
    if buf.len() < cap {
        buf.push(value);
        return;
    }
    let j = crate::faults::splitmix64(RESERVOIR_SEED ^ n) % (n + 1);
    if (j as usize) < cap {
        buf[j as usize] = value;
    }
}

/// Nearest-rank percentile of a **sorted** sample.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl ServeMetrics {
    /// Admission-wait reservoir capacity; bounds memory under
    /// unbounded traffic while keeping an unbiased sample of the whole
    /// run.
    pub const MAX_SAMPLES: usize = 1 << 16;

    /// Records one admission: the measured queue wait and whether the
    /// first `try_send` found the queue full.
    pub fn note_admitted(&self, conn: u64, wait_us: u64, was_deferred: bool) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
        if was_deferred {
            self.deferred.fetch_add(1, Ordering::Relaxed);
        }
        {
            let n = self.waits_total.fetch_add(1, Ordering::Relaxed);
            let mut waits = self.waits.lock().expect("metrics lock poisoned");
            reservoir_insert(&mut waits, Self::MAX_SAMPLES, n, wait_us);
        }
        let mut conns = self.conns.lock().expect("metrics lock poisoned");
        let counters = match conns.iter_mut().find(|(id, _)| *id == conn) {
            Some((_, counters)) => counters,
            None => {
                conns.push((conn, ConnCounters::default()));
                &mut conns.last_mut().expect("just pushed").1
            }
        };
        counters.requests += 1;
        counters.deferred += u64::from(was_deferred);
        counters.max_wait_us = counters.max_wait_us.max(wait_us);
    }

    /// Records the dispatcher taking one request off the queue.
    pub fn note_dequeued(&self) {
        // Saturating: an Open/Closed control event never incremented.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// Records one response line written to `conn`.
    pub fn note_response(&self, conn: u64) {
        let mut conns = self.conns.lock().expect("metrics lock poisoned");
        if let Some((_, counters)) = conns.iter_mut().find(|(id, _)| *id == conn) {
            counters.responses += 1;
        }
    }

    /// Records an accepted connection.
    pub fn note_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection refused at accept time.
    pub fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection dropped on an IO error.
    pub fn note_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request answered with an in-band `timeout` error.
    pub fn note_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// The current summary.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut waits = self
            .waits
            .lock()
            .expect("metrics lock poisoned")
            .clone();
        waits.sort_unstable();
        let (pool_waves, pool_tasks, pool_max_wave) = self.pool.snapshot();
        MetricsSnapshot {
            queue_depth_high_water: self.queue_high_water.load(Ordering::Relaxed),
            admission_wait_p50_us: percentile(&waits, 50.0),
            admission_wait_p99_us: percentile(&waits, 99.0),
            deferred: self.deferred.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            wait_samples: self.waits_total.load(Ordering::Relaxed),
            pool_waves,
            pool_tasks,
            pool_max_wave,
        }
    }

    /// The per-connection counters, in connection-id order.
    pub fn connections(&self) -> Vec<(u64, ConnCounters)> {
        let mut conns = self
            .conns
            .lock()
            .expect("metrics lock poisoned")
            .clone();
        conns.sort_by_key(|(id, _)| *id);
        conns
    }
}

impl MetricsSnapshot {
    /// The `metrics` member of an extended `stats` response (and of
    /// the bench report).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "queue_depth_high_water".into(),
                Json::uint(self.queue_depth_high_water),
            ),
            (
                "admission_wait_p50_us".into(),
                Json::uint(self.admission_wait_p50_us),
            ),
            (
                "admission_wait_p99_us".into(),
                Json::uint(self.admission_wait_p99_us),
            ),
            ("deferred".into(), Json::uint(self.deferred)),
            ("rejected".into(), Json::uint(self.rejected)),
            ("connections".into(), Json::uint(self.connections)),
            ("dropped".into(), Json::uint(self.dropped)),
            ("timeouts".into(), Json::uint(self.timeouts)),
            ("wait_samples".into(), Json::uint(self.wait_samples)),
            ("pool_waves".into(), Json::uint(self.pool_waves)),
            ("pool_tasks".into(), Json::uint(self.pool_tasks)),
            ("pool_max_wave".into(), Json::uint(self.pool_max_wave)),
        ])
    }

    /// The human-readable `--metrics` exit summary.
    pub fn summary(&self, conns: &[(u64, ConnCounters)]) -> String {
        let mut out = format!(
            "metrics: queue high-water {} | admission wait p50 {} us p99 {} us \
             ({} sample(s)) | {} deferred, {} rejected, {} timeout(s) | \
             {} connection(s), {} dropped | \
             pool: {} wave(s), {} task(s), max wave {}\n",
            self.queue_depth_high_water,
            self.admission_wait_p50_us,
            self.admission_wait_p99_us,
            self.wait_samples,
            self.deferred,
            self.rejected,
            self.timeouts,
            self.connections,
            self.dropped,
            self.pool_waves,
            self.pool_tasks,
            self.pool_max_wave,
        );
        for (id, c) in conns {
            out.push_str(&format!(
                "  conn {id}: {} request(s), {} response(s), {} deferred, max wait {} us\n",
                c.requests, c.responses, c.deferred, c.max_wait_us
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_depth_tracks_a_high_water_mark() {
        let m = ServeMetrics::default();
        m.note_admitted(0, 5, false);
        m.note_admitted(0, 10, true);
        m.note_admitted(1, 0, false);
        m.note_dequeued();
        m.note_admitted(1, 2, false);
        let snap = m.snapshot();
        assert_eq!(snap.queue_depth_high_water, 3);
        assert_eq!(snap.deferred, 1);
        assert_eq!(snap.wait_samples, 4);
        assert_eq!(snap.admission_wait_p99_us, 10);
        let conns = m.connections();
        assert_eq!(conns.len(), 2);
        assert_eq!(conns[0].1.requests, 2);
        assert_eq!(conns[0].1.max_wait_us, 10);
        assert_eq!(conns[1].1.requests, 2);
    }

    #[test]
    fn dequeue_saturates_at_zero() {
        let m = ServeMetrics::default();
        m.note_dequeued();
        m.note_admitted(0, 0, false);
        assert_eq!(m.snapshot().queue_depth_high_water, 1);
    }

    #[test]
    fn snapshots_render_as_json_and_summary() {
        let m = ServeMetrics::default();
        m.note_connection();
        m.note_rejected();
        m.note_admitted(7, 42, true);
        m.note_response(7);
        let snap = m.snapshot();
        let doc = snap.to_json();
        assert_eq!(doc.get("connections").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("rejected").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("deferred").and_then(Json::as_u64), Some(1));
        let text = snap.summary(&m.connections());
        assert!(text.contains("queue high-water 1"));
        assert!(text.contains("conn 7: 1 request(s), 1 response(s)"));
    }

    #[test]
    fn the_reservoir_is_deterministic_and_covers_the_whole_stream() {
        // Two identical streams produce identical reservoirs.
        let stream: Vec<u64> = (0..1000).collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (n, &v) in stream.iter().enumerate() {
            reservoir_insert(&mut a, 64, n as u64, v);
            reservoir_insert(&mut b, 64, n as u64, v);
        }
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        // The old buffer stopped at the first 64 observations; the
        // reservoir must have replaced some of them with later ones.
        assert!(
            a.iter().any(|&v| v >= 64),
            "reservoir never sampled past the startup window"
        );
        // And it never invents values outside the stream.
        assert!(a.iter().all(|&v| v < 1000));
    }

    #[test]
    fn long_runs_report_honest_tail_latency() {
        // A stream whose waits *grow* over time: the startup-biased
        // buffer would report a tiny p99; the reservoir must not.
        let m = ServeMetrics::default();
        let total = ServeMetrics::MAX_SAMPLES as u64 * 2;
        for n in 0..total {
            m.note_admitted(0, n, false);
            m.note_dequeued();
        }
        let snap = m.snapshot();
        assert_eq!(snap.wait_samples, total);
        assert!(
            snap.admission_wait_p99_us > ServeMetrics::MAX_SAMPLES as u64,
            "p99 {} stuck in the startup window",
            snap.admission_wait_p99_us
        );
    }

    #[test]
    fn timeouts_are_counted_and_rendered() {
        let m = ServeMetrics::default();
        m.note_timeout();
        m.note_timeout();
        let snap = m.snapshot();
        assert_eq!(snap.timeouts, 2);
        assert_eq!(snap.to_json().get("timeouts").and_then(Json::as_u64), Some(2));
        assert!(snap.summary(&[]).contains("2 timeout(s)"));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }
}
