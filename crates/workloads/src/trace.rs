//! Seeded request-trace generator for the allocation server.
//!
//! Models a fleet of clients recompiling the kernel suite under
//! shifting register budgets: kernels are drawn from a zipfian
//! popularity ranking (a few hot kernels dominate, the tail trickles),
//! the register-file size follows a clamped random walk (budgets drift
//! between deploys, they don't jump uniformly), and arrival times come
//! either as a uniform drip or as exponential on/off bursts — the
//! latter is what makes a p99 under replay mean something.
//!
//! Determinism follows the [`crate::stress`] conventions: one
//! [`StdRng`] seeded from the trace seed drives every draw, so the same
//! `(seed, config)` always produces the same trace, and failures
//! reproduce from the seed alone.

use crate::Kernel;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How request arrival times are spaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// A constant drip: one request every [`TraceConfig::mean_gap_us`].
    Uniform,
    /// Exponential on/off phases: inside an *on* phase requests arrive
    /// with exponential gaps at a quarter of the mean (a burst), and
    /// when the phase's exponential duration runs out an *off* pause —
    /// exponential, an order of magnitude longer than the mean gap —
    /// separates it from the next burst.
    Bursty,
}

impl Arrival {
    /// The stable name used by `--arrival` and the trace file.
    pub fn name(self) -> &'static str {
        match self {
            Arrival::Uniform => "uniform",
            Arrival::Bursty => "bursty",
        }
    }

    /// Parses an `--arrival` value.
    ///
    /// # Errors
    ///
    /// Returns the unknown name.
    pub fn parse(s: &str) -> Result<Arrival, String> {
        match s {
            "uniform" => Ok(Arrival::Uniform),
            "bursty" => Ok(Arrival::Bursty),
            other => Err(format!("unknown arrival model `{other}` (uniform|bursty)")),
        }
    }
}

/// Shape knobs of one generated trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Requests to generate.
    pub requests: usize,
    /// Trace seed; the same seed and config reproduce the trace.
    pub seed: u64,
    /// Packets per thread in the materialised kernel programs (part of
    /// the function text, hence of the content hash).
    pub packets: u32,
    /// Zipf exponent of the kernel popularity ranking (1.0 = classic
    /// zipf; larger skews harder toward the hot kernels).
    pub zipf_s: f64,
    /// Inclusive register-budget bounds of the drifting walk.
    pub nreg_bounds: (usize, usize),
    /// Largest single step of the budget walk.
    pub nreg_drift: usize,
    /// Arrival-time model.
    pub arrival: Arrival,
    /// Mean inter-arrival gap in microseconds.
    pub mean_gap_us: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            requests: 100,
            seed: 0xF1EE7,
            packets: 4,
            zipf_s: 1.1,
            nreg_bounds: (32, 128),
            nreg_drift: 12,
            arrival: Arrival::Uniform,
            mean_gap_us: 500,
        }
    }
}

/// One allocation request of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRequest {
    /// The kernel whose program is requested.
    pub kernel: Kernel,
    /// Threads sharing the register file (replicas of the kernel).
    pub nthd: usize,
    /// Register-file size.
    pub nreg: usize,
    /// Allocation strategy (`balanced`, `balanced-spill` or `ladder` —
    /// the one-shot `regbal alloc` modes).
    pub strategy: &'static str,
    /// Arrival offset from the trace start, in microseconds.
    pub at_us: u64,
}

/// The strategies a trace draws from, in draw order.
pub const TRACE_STRATEGIES: [&str; 3] = ["balanced", "balanced-spill", "ladder"];

/// A uniform f64 in `[0, 1)` from the generator's next 53 random bits.
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// An exponential draw with the given mean, in microseconds (capped at
/// one second so a pathological tail cannot stall a paced replay).
fn exponential_us(rng: &mut StdRng, mean_us: f64) -> u64 {
    let gap = -(1.0 - unit(rng)).ln() * mean_us;
    gap.min(1_000_000.0) as u64
}

/// Generates the trace. Kernel popularity is sampled by inverse CDF
/// over zipfian weights `1 / rank^s` (rank = position in
/// [`Kernel::ALL`]), the register budget walks with steps in
/// `[-drift, +drift]` clamped to the configured bounds, the thread
/// count leans 2:1 toward four-thread PUs, and strategies are drawn
/// uniformly from [`TRACE_STRATEGIES`].
pub fn generate_trace(config: &TraceConfig) -> Vec<TraceRequest> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (lo, hi) = config.nreg_bounds;
    let (lo, hi) = (lo.min(hi).max(1), lo.max(hi));

    // Zipfian cumulative weights over the kernel ranking.
    let mut cum = Vec::with_capacity(Kernel::ALL.len());
    let mut total = 0.0;
    for rank in 1..=Kernel::ALL.len() {
        total += 1.0 / (rank as f64).powf(config.zipf_s);
        cum.push(total);
    }

    let mut nreg = (lo + hi) / 2;
    let mut at_us = 0u64;
    // Bursty state: the wall-clock end of the current on phase.
    let on_mean = 6.0 * config.mean_gap_us as f64;
    let off_mean = 10.0 * config.mean_gap_us as f64;
    let burst_gap = config.mean_gap_us as f64 / 4.0;
    let mut phase_end = at_us + exponential_us(&mut rng, on_mean);

    (0..config.requests)
        .map(|_| {
            let u = unit(&mut rng) * total;
            let kernel = Kernel::ALL[cum.iter().position(|&c| u < c).unwrap_or(0)];
            let drift = config.nreg_drift as i64;
            let step = rng.random_range(-drift..=drift);
            nreg = (nreg as i64 + step).clamp(lo as i64, hi as i64) as usize;
            let nthd = if rng.random_range(0..3u32) < 2 { 4 } else { 2 };
            let strategy =
                TRACE_STRATEGIES[rng.random_range(0..TRACE_STRATEGIES.len())];
            match config.arrival {
                Arrival::Uniform => at_us += config.mean_gap_us,
                Arrival::Bursty => {
                    at_us += exponential_us(&mut rng, burst_gap);
                    if at_us >= phase_end {
                        at_us += exponential_us(&mut rng, off_mean);
                        phase_end = at_us + exponential_us(&mut rng, on_mean);
                    }
                }
            }
            TraceRequest {
                kernel,
                nthd,
                nreg,
                strategy,
                at_us,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let config = TraceConfig::default();
        assert_eq!(generate_trace(&config), generate_trace(&config));
        let other = TraceConfig {
            seed: 7,
            ..TraceConfig::default()
        };
        assert_ne!(generate_trace(&config), generate_trace(&other));
    }

    #[test]
    fn kernel_mix_is_zipfian_and_budget_stays_bounded() {
        let config = TraceConfig {
            requests: 2000,
            ..TraceConfig::default()
        };
        let trace = generate_trace(&config);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for r in &trace {
            *counts.entry(r.kernel.name()).or_default() += 1;
            assert!((32..=128).contains(&r.nreg), "budget left bounds: {}", r.nreg);
            assert!(r.nthd == 2 || r.nthd == 4);
            assert!(TRACE_STRATEGIES.contains(&r.strategy));
        }
        // The head of the ranking dominates its tail.
        let head = counts.get(Kernel::ALL[0].name()).copied().unwrap_or(0);
        let tail = counts
            .get(Kernel::ALL[Kernel::ALL.len() - 1].name())
            .copied()
            .unwrap_or(0);
        assert!(
            head > 3 * tail.max(1),
            "zipf head {head} should dwarf tail {tail}"
        );
        // The walk drifts: more than one budget shows up.
        let distinct: std::collections::HashSet<usize> =
            trace.iter().map(|r| r.nreg).collect();
        assert!(distinct.len() > 5, "budget walk too static: {distinct:?}");
    }

    #[test]
    fn uniform_drips_and_bursty_bursts() {
        let uniform = generate_trace(&TraceConfig {
            requests: 200,
            ..TraceConfig::default()
        });
        let gaps: Vec<u64> = uniform.windows(2).map(|w| w[1].at_us - w[0].at_us).collect();
        assert!(gaps.iter().all(|&g| g == 500), "uniform must drip evenly");

        let bursty = generate_trace(&TraceConfig {
            requests: 200,
            arrival: Arrival::Bursty,
            ..TraceConfig::default()
        });
        let gaps: Vec<u64> = bursty.windows(2).map(|w| w[1].at_us - w[0].at_us).collect();
        let short = gaps.iter().filter(|&&g| g < 250).count();
        let long = gaps.iter().filter(|&&g| g > 1000).count();
        assert!(short > gaps.len() / 2, "bursts: most gaps are short ({short})");
        assert!(long > 0, "off phases: some gaps are long ({long})");
        // Arrival times never go backwards.
        assert!(bursty.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn arrival_names_round_trip() {
        for a in [Arrival::Uniform, Arrival::Bursty] {
            assert_eq!(Arrival::parse(a.name()), Ok(a));
        }
        assert!(Arrival::parse("poisson").is_err());
    }
}
