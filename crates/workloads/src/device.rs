//! The device worker kernel: the program each worker thread runs under
//! `regbal_sim::device`'s ring protocol.
//!
//! A worker owns one descriptor ring. It polls the ring's `head`
//! against its own `tail`; on work it pops a packet id, reads the
//! packet's first eight words from SDRAM in one burst, folds them into
//! a digest with the id, and loops. When the command processor's stop
//! flag is up *and* a re-read of `head` confirms the ring is drained,
//! the worker publishes its digest and packet count to scratch and
//! halts.
//!
//! The digest is a pure function of the packet id and bytes, and the
//! published words are combined with wrapping adds — so the device's
//! *global* digest does not depend on which thread processed which
//! packet, which is what lets two allocations with different timing be
//! compared. The mixing keeps the eight burst words, the id and the
//! loop-carried accumulators live together, giving the kernel a
//! register-pressure profile in the range of the paper's mid-weight
//! kernels; the id and accumulators stay live across the burst's
//! context-switch boundary, exercising the allocator's shared-range
//! machinery.

use regbal_ir::{BinOp, Cond, Func, FuncBuilder, MemSpace, VReg};
use regbal_sim::device::{
    COUNT_BASE, DIGEST_BASE, HEADS_BASE, PKT_BASE, PKT_SHIFT, RINGS_BASE, STOPS_BASE, TAILS_BASE,
};
use regbal_sim::DeviceSpec;

/// Builds the worker program for ring `ring` of `spec` (virtual
/// registers; compile through a strategy for the physical build).
pub fn build_worker(spec: &DeviceSpec, ring: usize) -> Func {
    let qmask = i64::from(spec.queue_capacity - 1);
    // The ring's slot array starts at a build-time constant offset.
    let slots_base = i64::from(RINGS_BASE) + (ring as i64) * i64::from(spec.queue_capacity) * 4;
    let rb = (ring as i64) * 4;

    let mut b = FuncBuilder::new(format!("worker_r{ring}"));
    let poll = b.new_block();
    let empty = b.new_block();
    let yield_ = b.new_block();
    let drain = b.new_block();
    let pop = b.new_block();
    let fin = b.new_block();

    // Loop-carried state.
    let acc = b.imm(0);
    let cnt = b.imm(0);
    let zero = b.imm(0); // base register for absolute addressing
    b.jump(poll);

    b.switch_to(poll);
    let tail = b.load(MemSpace::Sram, zero, rb + i64::from(TAILS_BASE));
    let head = b.load(MemSpace::Sram, zero, rb + i64::from(HEADS_BASE));
    b.branch(Cond::Ne, head, tail, pop, empty);

    b.switch_to(empty);
    let stop = b.load(MemSpace::Sram, zero, rb + i64::from(STOPS_BASE));
    b.branch(Cond::Ne, stop, 0, drain, yield_);

    b.switch_to(yield_);
    b.ctx();
    b.jump(poll);

    // The stop flag was observed *after* our head read, so the head may
    // be stale: the CP publishes every head before the flag. Re-read;
    // only an unchanged head means the ring is truly drained.
    b.switch_to(drain);
    let head2 = b.load(MemSpace::Sram, zero, rb + i64::from(HEADS_BASE));
    b.branch(Cond::Eq, head2, tail, fin, poll);

    b.switch_to(pop);
    let slot = b.and(tail, qmask);
    let slot_byte = b.shl(slot, 2);
    let id = b.load(MemSpace::Sram, slot_byte, slots_base);
    let t1 = b.add(tail, 1);
    b.store(MemSpace::Sram, zero, rb + i64::from(TAILS_BASE), t1);
    let pa = b.shl(id, i64::from(PKT_SHIFT));
    let w = b.load_burst(MemSpace::Sdram, pa, i64::from(PKT_BASE), 8);
    // Mix: pairwise rotate-combine, cross-fold, then bind the id.
    let a1 = rot_mix(&mut b, w[0], w[1], 5, BinOp::Add);
    let a2 = rot_mix(&mut b, w[2], w[3], 11, BinOp::Xor);
    let a3 = rot_mix(&mut b, w[4], w[5], 17, BinOp::Add);
    let a4 = rot_mix(&mut b, w[6], w[7], 23, BinOp::Xor);
    let m1 = b.xor(a1, a3);
    let m2 = b.xor(a2, a4);
    let c1 = b.add(m1, m2);
    let idh = b.mul(id, 0x9E37_79B1);
    let c2 = b.xor(c1, idh);
    // Second combine over the raw words keeps them live through the
    // first fold (pressure, not security).
    let e1 = b.add(w[0], w[7]);
    let e2 = b.add(w[3], w[4]);
    let e3 = b.xor(e1, e2);
    let d = b.add(c2, e3);
    b.add_to(acc, acc, d);
    b.add_to(cnt, cnt, 1);
    b.iter_end();
    b.jump(poll);

    b.switch_to(fin);
    b.store(MemSpace::Scratch, zero, rb + i64::from(DIGEST_BASE), acc);
    b.store(MemSpace::Scratch, zero, rb + i64::from(COUNT_BASE), cnt);
    b.halt();

    b.build().expect("device worker is well-formed")
}

/// `lhs OP rotl(rhs, k)` — the rotate keeps both inputs live across
/// three instructions.
fn rot_mix(b: &mut FuncBuilder, lhs: VReg, rhs: VReg, k: i64, op: BinOp) -> VReg {
    let hi = b.shl(rhs, k);
    let lo = b.shr(rhs, 32 - k);
    let rot = b.or(hi, lo);
    b.bin(op, lhs, rot)
}

/// The host-side model of one packet's digest: must mirror the worker
/// kernel exactly (pinned by a test in this module).
pub fn packet_digest(id: u32, words: &[u32; 8]) -> u32 {
    let rot_mix = |l: u32, r: u32, k: u32, add: bool| {
        let rot = r.rotate_left(k);
        if add {
            l.wrapping_add(rot)
        } else {
            l ^ rot
        }
    };
    let a1 = rot_mix(words[0], words[1], 5, true);
    let a2 = rot_mix(words[2], words[3], 11, false);
    let a3 = rot_mix(words[4], words[5], 17, true);
    let a4 = rot_mix(words[6], words[7], 23, false);
    let c1 = (a1 ^ a3).wrapping_add(a2 ^ a4);
    let c2 = c1 ^ id.wrapping_mul(0x9E37_79B1);
    let e3 = words[0].wrapping_add(words[7]) ^ words[3].wrapping_add(words[4]);
    c2.wrapping_add(e3)
}

/// The expected global digest of a device run: the wrapping sum of
/// every packet's digest over the generator's buffer. Order-free, so it
/// predicts [`regbal_sim::Device::total_digest`] for *any* allocation
/// and any core.
pub fn expected_total_digest(mem: &regbal_sim::Memory, packets: u32) -> u32 {
    let mut total = 0u32;
    for id in 0..packets {
        let base = PKT_BASE + (id << PKT_SHIFT);
        let mut words = [0u32; 8];
        for (w, word) in words.iter_mut().enumerate() {
            *word = mem.read_word(MemSpace::Sdram, base + 4 * w as u32);
        }
        total = total.wrapping_add(packet_digest(id, &words));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fill_packets;
    use regbal_sim::device::ChipCore;
    use regbal_sim::Device;

    fn spec() -> DeviceSpec {
        DeviceSpec {
            pus: 2,
            threads_per_pu: 2,
            queue_capacity: 4,
            packets: 24,
        }
    }

    /// End-to-end: CP + workers over virtual registers process every
    /// packet, and the device digest matches the host-side model —
    /// pinning the IR kernel to `packet_digest`.
    #[test]
    fn device_processes_all_packets_and_digest_matches_model() {
        let spec = spec();
        let mut device = Device::new(spec);
        fill_packets(device.chip_mut().memory_mut(), PKT_BASE, spec.packets, 7);
        let expected = expected_total_digest(device.chip().memory(), spec.packets);
        device.add_cp(spec.command_processor());
        for pu in 0..spec.pus {
            for t in 0..spec.threads_per_pu {
                device.add_worker(pu, build_worker(&spec, spec.ring(pu, t)));
            }
        }
        device.run(ChipCore::Event, 10_000_000);
        assert!(device.all_halted(), "device must drain and halt");
        assert_eq!(device.total_processed(), u64::from(spec.packets));
        assert_eq!(device.total_digest(), expected);
    }

    /// Depth limits below the queue capacity still drain every packet —
    /// the gate throttles admission, it must not deadlock it.
    #[test]
    fn tight_depth_limits_still_drain() {
        let spec = spec();
        let mut device = Device::new(spec);
        for ring in 0..spec.rings() {
            device.set_depth_limit(ring, 1);
        }
        fill_packets(device.chip_mut().memory_mut(), PKT_BASE, spec.packets, 9);
        let expected = expected_total_digest(device.chip().memory(), spec.packets);
        device.add_cp(spec.command_processor());
        for pu in 0..spec.pus {
            for t in 0..spec.threads_per_pu {
                device.add_worker(pu, build_worker(&spec, spec.ring(pu, t)));
            }
        }
        device.run(ChipCore::Event, 10_000_000);
        assert!(device.all_halted());
        assert_eq!(device.total_processed(), u64::from(spec.packets));
        assert_eq!(device.total_digest(), expected);
    }

    #[test]
    fn worker_program_validates() {
        let spec = spec();
        for ring in 0..spec.rings() {
            assert!(build_worker(&spec, ring).validate().is_ok());
        }
    }
}
