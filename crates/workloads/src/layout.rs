//! Per-slot memory layout so concurrent threads use disjoint buffers.

/// Bytes of scratch memory reserved for each slot's output region.
pub(crate) const OUT_REGION_BYTES: usize = 256;

/// Byte stride of one packet in SDRAM (header + payload window).
pub(crate) const PKT_STRIDE: u32 = 64;

/// Base addresses of one memory slot.
///
/// Each simulated thread is bound to a slot: packet buffers in SDRAM,
/// lookup tables and queues in SRAM, observable results in scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bases {
    /// First packet byte in SDRAM.
    pub pkt: u32,
    /// Table/queue area in SRAM.
    pub table: u32,
    /// Output region in scratch memory.
    pub out: u32,
}

impl Bases {
    /// The layout of memory slot `slot` (supports at least 8 slots
    /// within the default simulator memory sizes).
    pub fn for_slot(slot: usize) -> Bases {
        let s = slot as u32;
        Bases {
            pkt: 0x40000 * s,
            table: 0x8000 * s,
            out: 0x400 * s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_disjoint() {
        for a in 0..8usize {
            for b in (a + 1)..8 {
                let (x, y) = (Bases::for_slot(a), Bases::for_slot(b));
                assert!(x.pkt.abs_diff(y.pkt) >= 0x40000);
                assert!(x.table.abs_diff(y.table) >= 0x8000);
                assert!(x.out.abs_diff(y.out) >= OUT_REGION_BYTES as u32);
            }
        }
    }
}
