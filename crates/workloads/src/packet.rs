//! Deterministic synthetic packet generation.

use crate::layout::PKT_STRIDE;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use regbal_ir::MemSpace;
use regbal_sim::Memory;

/// Fills `count` synthetic packets of [`PKT_STRIDE`] bytes each at
/// `base` in SDRAM.
///
/// Each packet looks vaguely like an Ethernet+IPv4 frame: 12 bytes of
/// MAC addresses, a 2-byte type, then an IPv4-ish header whose word 2
/// carries the packet length and whose words 3/4 carry addresses; the
/// rest is seeded random payload. The structure is shared by all
/// kernels so that header-field offsets mean the same thing everywhere.
pub fn fill_packets(mem: &mut Memory, base: u32, count: u32, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for p in 0..count {
        let addr = base + p * PKT_STRIDE;
        let mut bytes = [0u8; PKT_STRIDE as usize];
        rng.fill(&mut bytes[..]);
        // Deterministic-looking header fields on top of the noise.
        bytes[12] = 0x08; // ethertype IPv4
        bytes[13] = 0x00;
        bytes[14] = 0x45; // version/IHL
        bytes[15] = 0x00;
        // Length field: payload sizes cycle through realistic values.
        let len = 20 + (p % 11) * 4;
        bytes[16] = (len >> 8) as u8;
        bytes[17] = (len & 0xff) as u8;
        // TTL byte used by the forwarding kernels.
        bytes[22] = 2 + (bytes[22] % 60);
        mem.write_bytes(MemSpace::Sdram, addr, &bytes);
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Memory::new(0, 0, 1 << 16, 0);
        let mut b = Memory::new(0, 0, 1 << 16, 0);
        fill_packets(&mut a, 0, 4, 7);
        fill_packets(&mut b, 0, 4, 7);
        assert_eq!(
            a.read_bytes(MemSpace::Sdram, 0, 256),
            b.read_bytes(MemSpace::Sdram, 0, 256)
        );
        let mut c = Memory::new(0, 0, 1 << 16, 0);
        fill_packets(&mut c, 0, 4, 8);
        assert_ne!(
            a.read_bytes(MemSpace::Sdram, 0, 256),
            c.read_bytes(MemSpace::Sdram, 0, 256)
        );
    }

    #[test]
    fn header_fields_present() {
        let mut m = Memory::new(0, 0, 1 << 16, 0);
        fill_packets(&mut m, 0, 2, 1);
        for p in 0..2u32 {
            let b = m.read_bytes(MemSpace::Sdram, p * PKT_STRIDE, 24);
            assert_eq!(b[12], 0x08);
            assert_eq!(b[14], 0x45);
            assert!(b[22] >= 2);
        }
    }
}
