//! Network-processing benchmark kernels for the `regbal` evaluation.
//!
//! The paper evaluates on 11 benchmarks drawn from CommBench, NetBench,
//! Intel example code and the WRAPS scheduler. Those sources are IXP
//! microcode and C that we cannot ship, so this crate provides
//! **behaviourally equivalent kernels built directly in `regbal` IR**:
//! each processes a stream of synthetic packets in an infinite-style
//! main loop (bounded by a packet count for simulation), touches memory
//! through context-switching `load`/`store` operations at a realistic
//! ~10 % CTX density, and reproduces the *register-pressure profile*
//! that drives the paper's results — `md5` and the `wraps` pair are
//! register-hungry (performance-critical in the scenarios), `fir2dim`
//! and the forwarding kernels are lean.
//!
//! Every kernel writes a running checksum of its work to scratch memory,
//! so a simulation can be validated end to end: the physical-register
//! build must produce byte-identical output to the virtual-register
//! reference build.
//!
//! The suite and its pressure profiles (RegPmax / RegPCSBmax are the
//! paper's `MinR` / `MinPR`; see the `table1` binary in `regbal-bench`
//! for live numbers):
//!
//! | kernel | origin (paper) | character |
//! |---|---|---|
//! | `md5` | NetBench | burst-fed digest; private-hungry, critical |
//! | `fir2dim` | CommBench/DSPstone | 2-D filter; lean, memory-bound |
//! | `frag` | CommBench (paper Fig. 4) | checksum loop + fragment headers |
//! | `crc` | CommBench | rolling shift-xor checksum |
//! | `drr` | CommBench | deficit round robin, queue RMW, Fig. 9 pattern |
//! | `reed` | CommBench | table-driven parity, CSB-dense |
//! | `url` | NetBench | payload pattern match, branch-heavy |
//! | `l2l3fwd-rx/tx` | Intel example code | forwarding with next-hop table and rings |
//! | `wraps-rx/tx` | paper ref. [18] | credit scheduler; internal-hungry, critical |
//!
//! # Example
//!
//! ```
//! use regbal_workloads::{Kernel, Workload};
//! use regbal_sim::{SimConfig, Simulator, StopWhen};
//!
//! let w = Workload::new(Kernel::Crc, 0, 8);
//! let mut sim = Simulator::new(SimConfig::default());
//! w.prepare(sim.memory_mut(), 42);
//! sim.add_thread(w.func.clone());
//! let report = sim.run(StopWhen::Iterations(8));
//! assert_eq!(report.threads[0].iterations, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
mod kernels;
mod layout;
mod packet;
pub mod stress;
pub mod trace;

pub use device::{build_worker, expected_total_digest, packet_digest};
pub use kernels::Kernel;
pub use layout::Bases;
pub use packet::fill_packets;
pub use stress::{stress_bundle, stress_program, StressConfig};
pub use trace::{generate_trace, Arrival, TraceConfig, TraceRequest, TRACE_STRATEGIES};

use regbal_ir::Func;
use regbal_sim::Memory;

/// A ready-to-run benchmark instance: one kernel bound to a memory
/// *slot* (so several threads can run the same kernel on disjoint
/// buffers) and a packet count.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which kernel this is.
    pub kernel: Kernel,
    /// The memory slot the kernel's buffers live in.
    pub slot: usize,
    /// Packets processed before the thread halts (= main-loop
    /// iterations).
    pub packets: u32,
    /// The program over virtual registers.
    pub func: Func,
}

impl Workload {
    /// Builds the kernel program for `slot`, processing `packets`
    /// packets.
    pub fn new(kernel: Kernel, slot: usize, packets: u32) -> Workload {
        Workload {
            kernel,
            slot,
            packets,
            func: kernel.build(slot, packets),
        }
    }

    /// Fills the workload's input buffers and tables with seeded,
    /// deterministic data.
    pub fn prepare(&self, mem: &mut Memory, seed: u64) {
        self.kernel.prepare(mem, self.slot, self.packets, seed);
    }

    /// The scratch-memory region holding the kernel's observable output
    /// (`(address, length in bytes)`), for end-to-end comparison of two
    /// simulation runs.
    pub fn output_region(&self) -> (u32, usize) {
        let b = Bases::for_slot(self.slot);
        (b.out, layout::OUT_REGION_BYTES)
    }
}
