//! Two-dimensional FIR filter (CommBench/DSPstone `fir2dim` flavour).
//!
//! Convolves a 3×3 kernel over a window of the packet payload treated
//! as a 4×4 pixel tile. The inner loop loads three pixels, multiplies by
//! constant coefficients and accumulates — a lean, memory-bound kernel
//! with low register pressure, the tolerant "non-critical" thread of
//! the paper's scenarios.

use super::Shell;
use regbal_ir::{Cond, Func, MemSpace, Operand};

pub(super) fn build(mut shell: Shell) -> Func {
    let pkt = shell.pkt;
    let out = shell.out;
    let b = &mut shell.b;

    // Column loop: x in 0..4, one output per column position.
    let col_head = b.new_block();
    let col_body = b.new_block();
    let done = b.new_block();

    let x = b.imm(0);
    let acc_total = b.imm(0);
    b.jump(col_head);

    b.switch_to(col_head);
    b.branch(Cond::Lt, x, Operand::Imm(4), col_body, done);

    b.switch_to(col_body);
    // Load a 3-pixel column strip at offset x*4, rows 0..3 (row stride
    // 16 bytes), multiply-accumulate with the coefficients 1, 2, 1.
    let off = b.shl(x, Operand::Imm(2));
    let addr = b.add(pkt, off);
    let p0 = b.load(MemSpace::Sdram, addr, 0);
    let p1 = b.load(MemSpace::Sdram, addr, 16);
    let p2 = b.load(MemSpace::Sdram, addr, 32);
    let t0 = b.and(p0, Operand::Imm(0xff));
    let t1 = b.and(p1, Operand::Imm(0xff));
    let t2 = b.and(p2, Operand::Imm(0xff));
    let m1 = b.shl(t1, Operand::Imm(1));
    let s = b.add(t0, m1);
    let s = b.add(s, t2);
    // Second tap: the next row window with coefficients 1, 1, 1.
    let q0 = b.load(MemSpace::Sdram, addr, 48);
    let u0 = b.and(q0, Operand::Imm(0xff));
    let s = b.add(s, u0);
    b.add_to(acc_total, acc_total, s);
    // Store the per-column response.
    let slot = b.add(out, off);
    b.store(MemSpace::Scratch, slot, 16, s);
    b.add_to(x, x, Operand::Imm(1));
    b.jump(col_head);

    b.switch_to(done);
    shell.absorb(acc_total);
    shell.finish()
}

#[cfg(test)]
mod tests {
    use super::super::Kernel;
    use regbal_analysis::ProgramInfo;

    #[test]
    fn fir2dim_is_lean() {
        let f = Kernel::Fir2dim.build(0, 4);
        let info = ProgramInfo::compute(&f);
        assert!(info.pressure.regp_max <= 12, "{}", info.pressure.regp_max);
        assert!(f.num_ctx_insts() >= 4, "loads in the loop");
    }
}
