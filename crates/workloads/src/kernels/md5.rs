//! MD5-style message digest (NetBench `md5` flavour).
//!
//! Streams the packet through the compression function in three
//! four-word groups: each group arrives in one burst and is consumed by
//! eight mixing steps, with a voluntary `ctx` after each four-step pass
//! so the thread never monopolises the non-preemptive PU (paper
//! footnote 1). The resident group words are live across those yields,
//! so md5 is the *private*-register-hungry benchmark: under a fixed
//! partition it spills, and the balancing allocator must grant it a
//! larger share — the mechanism behind the paper's scenarios 1 and 2.

use super::{rotl, Shell};
use regbal_ir::{Func, FuncBuilder, MemSpace, Operand, UnOp, VReg};

/// MD5 per-step shift amounts (first two rounds of the real MD5).
const SHIFTS: [i64; 8] = [7, 12, 17, 22, 5, 9, 14, 20];

/// Sine-table constants (a subset of the real MD5 T table).
const T: [i64; 12] = [
    0xd76a_a478,
    0xe8c7_b756,
    0x2420_70db,
    0xc1bd_ceee,
    0xf57c_0faf,
    0x4787_c62a,
    0xa830_4613,
    0xfd46_9501,
    0x6980_98d8,
    0x8b44_f7af,
    0xffff_5bb1,
    0x895c_d7be,
];

pub(super) fn build(mut shell: Shell) -> Func {
    let pkt = shell.pkt;
    let b = &mut shell.b;

    // Initial state (the real MD5 IVs).
    let a = b.imm(0x6745_2301);
    let bb = b.imm(0xefcd_ab89u32 as i64);
    let c = b.imm(0x98ba_dcfeu32 as i64);
    let d = b.imm(0x1032_5476);
    let mut state = [a, bb, c, d];

    // Three groups of four message words; each group is used by an
    // F-pass and a G-pass (eight steps) while resident, with a fairness
    // yield between the passes and after each group.
    for g in 0..3usize {
        let m: Vec<VReg> = b.load_burst(MemSpace::Sdram, pkt, (g * 16) as i64, 4);
        for pass in 0..2usize {
            for (j, &mj) in m.iter().enumerate() {
                let step = g * 8 + pass * 4 + j;
                md5_step(
                    b,
                    &mut state,
                    mj,
                    SHIFTS[(pass * 4 + j) % 8],
                    T[step % 12],
                    pass == 1,
                );
            }
        }
    }

    // Fold the state into the digest words and the running checksum.
    let [a, bb, c, d] = state;
    let d0 = b.add(a, bb);
    let d1 = b.add(c, d);
    b.store_burst(MemSpace::Scratch, shell.out, 8, &[d0, d1]);
    shell.absorb(d0);
    shell.absorb(d1);
    shell.finish()
}

/// One MD5 step: `a = b + rotl(a + f(b,c,d) + m + t, s)`, then the
/// state rotates `(a,b,c,d) → (d, a', b, c)`.
fn md5_step(b: &mut FuncBuilder, state: &mut [VReg; 4], m: VReg, s: i64, t: i64, g_round: bool) {
    let [a, x, y, z] = *state;
    let f = if g_round {
        // G(b,c,d) = (d & b) | (!d & c)
        let db = b.and(z, x);
        let nd = b.un(UnOp::Not, z);
        let ndc = b.and(nd, y);
        b.or(db, ndc)
    } else {
        // F(b,c,d) = (b & c) | (!b & d)
        let bc = b.and(x, y);
        let nb = b.un(UnOp::Not, x);
        let nbd = b.and(nb, z);
        b.or(bc, nbd)
    };
    let sum = b.add(a, f);
    let sum = b.add(sum, m);
    let sum = b.add(sum, Operand::Imm(t));
    let rot = rotl(b, sum, s);
    let new_a = b.add(x, rot);
    *state = [z, new_a, x, y];
}

#[cfg(test)]
mod tests {
    use super::super::{Kernel, Shell};
    use regbal_analysis::ProgramInfo;

    #[test]
    fn md5_profile() {
        let f = Kernel::Md5.build(0, 4);
        let info = ProgramInfo::compute(&f);
        // High total pressure, modest boundary pressure: the group
        // words and step temporaries are internal.
        assert!(info.pressure.regp_max >= 13, "{}", info.pressure.regp_max);
        assert!(
            info.pressure.regp_max >= info.pressure.regp_csb_max + 3,
            "{} vs {}",
            info.pressure.regp_max,
            info.pressure.regp_csb_max
        );
        assert!(f.num_insts() > 150);
    }

    #[test]
    fn shell_absorb_mixes() {
        let mut shell = Shell::new("t", 0, 1);
        let v = shell.b.imm(5);
        shell.absorb(v);
        let f = shell.finish();
        f.validate().unwrap();
    }
}
