//! The 11 benchmark kernels and their shared scaffolding.

mod crc;
mod drr;
mod fir2dim;
mod frag;
mod l2l3fwd;
mod md5;
mod reed;
mod url;
mod wraps;

use crate::layout::{Bases, PKT_STRIDE};
use crate::packet::fill_packets;
use regbal_ir::{BlockId, Cond, Func, FuncBuilder, MemSpace, Operand, VReg};
use regbal_sim::Memory;

/// The benchmark kernels of the evaluation (paper Table 1's suite,
/// rebuilt; `l2l3fwd` and `wraps` appear as separate receive/send
/// programs, as in the paper's scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// MD5-style message digest (NetBench) — register-hungry,
    /// performance-critical in scenarios 1 and 2.
    Md5,
    /// 2-D FIR filter (DSPstone/CommBench flavour) — lean, tolerant.
    Fir2dim,
    /// IP fragmentation + checksum (CommBench; the paper's Fig. 4
    /// running example).
    Frag,
    /// CRC-style rolling checksum over packet payloads (CommBench).
    Crc,
    /// Deficit-round-robin scheduler (CommBench `drr`).
    Drr,
    /// Reed-Solomon-style table-driven parity encoder (CommBench).
    Reed,
    /// URL/pattern matching over payload bytes (NetBench `url`).
    Url,
    /// Layer-2/3 forwarding, receive side (Intel example code).
    L2l3fwdRx,
    /// Layer-2/3 forwarding, send side (Intel example code).
    L2l3fwdTx,
    /// WRAPS packet scheduler, receive side (paper ref. [18]) —
    /// register-hungry, performance-critical in scenario 3.
    WrapsRx,
    /// WRAPS packet scheduler, send side.
    WrapsTx,
}

impl Kernel {
    /// All kernels, in Table-1 order.
    pub const ALL: [Kernel; 11] = [
        Kernel::Md5,
        Kernel::Fir2dim,
        Kernel::Frag,
        Kernel::Crc,
        Kernel::Drr,
        Kernel::Reed,
        Kernel::Url,
        Kernel::L2l3fwdRx,
        Kernel::L2l3fwdTx,
        Kernel::WrapsRx,
        Kernel::WrapsTx,
    ];

    /// The benchmark's display name.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Md5 => "md5",
            Kernel::Fir2dim => "fir2dim",
            Kernel::Frag => "frag",
            Kernel::Crc => "crc",
            Kernel::Drr => "drr",
            Kernel::Reed => "reed",
            Kernel::Url => "url",
            Kernel::L2l3fwdRx => "l2l3fwd-rx",
            Kernel::L2l3fwdTx => "l2l3fwd-tx",
            Kernel::WrapsRx => "wraps-rx",
            Kernel::WrapsTx => "wraps-tx",
        }
    }

    /// Builds the kernel program over virtual registers for memory
    /// `slot`, processing `packets` packets before halting.
    pub fn build(self, slot: usize, packets: u32) -> Func {
        let shell = Shell::new(self.name(), slot, packets);
        let f = match self {
            Kernel::Md5 => md5::build(shell),
            Kernel::Fir2dim => fir2dim::build(shell),
            Kernel::Frag => frag::build(shell),
            Kernel::Crc => crc::build(shell),
            Kernel::Drr => drr::build(shell),
            Kernel::Reed => reed::build(shell),
            Kernel::Url => url::build(shell),
            Kernel::L2l3fwdRx => l2l3fwd::build_rx(shell),
            Kernel::L2l3fwdTx => l2l3fwd::build_tx(shell),
            Kernel::WrapsRx => wraps::build_rx(shell),
            Kernel::WrapsTx => wraps::build_tx(shell),
        };
        debug_assert!(f.validate().is_ok());
        f
    }

    /// Fills the kernel's input packets and tables for `slot`. At most
    /// 1024 packets are materialised — long steady-state timing runs
    /// wrap around the buffer.
    pub fn prepare(self, mem: &mut Memory, slot: usize, packets: u32, seed: u64) {
        let b = Bases::for_slot(slot);
        fill_packets(mem, b.pkt, packets.min(1024), seed ^ (slot as u64) << 8);
        match self {
            Kernel::Drr => drr::prepare_tables(mem, b),
            Kernel::Reed => reed::prepare_tables(mem, b),
            Kernel::Url => url::prepare_tables(mem, b),
            Kernel::L2l3fwdRx | Kernel::L2l3fwdTx => l2l3fwd::prepare_tables(mem, b),
            Kernel::WrapsRx | Kernel::WrapsTx => wraps::prepare_tables(mem, b),
            _ => {}
        }
    }
}

/// Scaffolding shared by every kernel: the packet main loop with a
/// per-packet body, pointer/counter maintenance, an accumulated output
/// checksum and the `iter_end` marker.
pub(crate) struct Shell {
    /// The function under construction.
    pub b: FuncBuilder,
    /// Current packet address (SDRAM), advanced each iteration.
    pub pkt: VReg,
    /// Output base (scratch).
    pub out: VReg,
    /// Table base (SRAM).
    pub table: VReg,
    /// Running output checksum, stored per iteration.
    pub csum: VReg,
    /// Remaining packet count.
    counter: VReg,
    /// The per-packet body block (current block after `new`).
    body: BlockId,
    exit: BlockId,
}

impl Shell {
    /// Opens the shell: emits the preamble and positions the builder at
    /// the top of the per-packet body.
    pub fn new(name: &str, slot: usize, packets: u32) -> Shell {
        let bases = Bases::for_slot(slot);
        let mut b = FuncBuilder::new(name);
        let body = b.new_block();
        let exit = b.new_block();
        let pkt = b.imm(bases.pkt as i64);
        let out = b.imm(bases.out as i64);
        let table = b.imm(bases.table as i64);
        let csum = b.imm(0x1357);
        let counter = b.imm(packets.max(1) as i64);
        b.jump(body);
        b.switch_to(body);
        Shell {
            b,
            pkt,
            out,
            table,
            csum,
            counter,
            body,
            exit,
        }
    }

    /// Mixes a value into the running output checksum (2 instructions).
    pub fn absorb(&mut self, value: VReg) {
        let rot = rotl(&mut self.b, self.csum, 5);
        self.b.mov_to(self.csum, rot);
        self.b.xor_to(self.csum, self.csum, value);
    }

    /// Closes the shell: stores the checksum, advances the packet
    /// pointer, decrements the counter, marks the iteration and loops;
    /// the exit block stores the final checksum and halts. Consumes the
    /// shell and returns the finished function.
    ///
    /// # Panics
    ///
    /// Panics if the assembled function is invalid (a kernel bug).
    pub fn finish(mut self) -> Func {
        let Shell {
            ref mut b,
            pkt,
            out,
            csum,
            counter,
            body,
            exit,
            ..
        } = self;
        b.store(MemSpace::Scratch, out, 0, csum);
        b.add_to(pkt, pkt, Operand::Imm(PKT_STRIDE as i64));
        b.sub_to(counter, counter, Operand::Imm(1));
        b.iter_end();
        b.branch(Cond::Ne, counter, Operand::Imm(0), body, exit);
        b.switch_to(exit);
        b.store(MemSpace::Scratch, out, 4, csum);
        b.halt();
        self.b.build().expect("kernel builder produced invalid IR")
    }
}

/// Emits a rotate-left by constant (3 instructions).
pub(crate) fn rotl(b: &mut FuncBuilder, x: VReg, s: i64) -> VReg {
    let hi = b.shl(x, Operand::Imm(s & 31));
    let lo = b.shr(x, Operand::Imm((32 - s) & 31));
    b.or(hi, lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_sim::{SimConfig, Simulator, StopWhen};

    #[test]
    fn all_kernels_build_valid_functions() {
        for k in Kernel::ALL {
            let f = k.build(0, 4);
            f.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            assert!(f.num_insts() > 20, "{} too small", k.name());
            assert!(f.num_ctx_insts() >= 2, "{} needs CSBs", k.name());
        }
    }

    #[test]
    fn all_kernels_run_and_produce_output() {
        for k in Kernel::ALL {
            let w = crate::Workload::new(k, 0, 3);
            let mut sim = Simulator::new(SimConfig::default());
            w.prepare(sim.memory_mut(), 11);
            sim.add_thread(w.func.clone());
            let r = sim.run(StopWhen::Cycles(5_000_000));
            assert!(r.threads[0].halted, "{} did not halt", k.name());
            assert_eq!(r.threads[0].iterations, 3, "{}", k.name());
            let (addr, _) = w.output_region();
            let csum = sim.memory().read_word(regbal_ir::MemSpace::Scratch, addr + 4);
            assert_ne!(csum, 0, "{} produced no checksum", k.name());
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        for k in [Kernel::Md5, Kernel::Drr, Kernel::WrapsRx] {
            let run = || {
                let w = crate::Workload::new(k, 0, 4);
                let mut sim = Simulator::new(SimConfig::default());
                w.prepare(sim.memory_mut(), 99);
                sim.add_thread(w.func.clone());
                sim.run(StopWhen::Cycles(5_000_000));
                let (addr, len) = w.output_region();
                sim.memory().read_bytes(regbal_ir::MemSpace::Scratch, addr, len)
            };
            assert_eq!(run(), run(), "{}", k.name());
        }
    }

    #[test]
    fn seeds_change_output() {
        let w = crate::Workload::new(Kernel::Crc, 0, 4);
        let run = |seed| {
            let mut sim = Simulator::new(SimConfig::default());
            w.prepare(sim.memory_mut(), seed);
            sim.add_thread(w.func.clone());
            sim.run(StopWhen::Cycles(5_000_000));
            let (addr, len) = w.output_region();
            sim.memory().read_bytes(regbal_ir::MemSpace::Scratch, addr, len)
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn pressure_profile_matches_paper_roles() {
        use regbal_analysis::ProgramInfo;
        let pressure = |k: Kernel| {
            ProgramInfo::compute(&k.build(0, 8)).pressure.regp_max
        };
        // The performance-critical kernels must need far more registers
        // than the lean ones — that imbalance drives the whole paper.
        assert!(pressure(Kernel::Md5) >= 13, "md5: {}", pressure(Kernel::Md5));
        assert!(
            pressure(Kernel::WrapsRx) >= 15,
            "wraps-rx: {}",
            pressure(Kernel::WrapsRx)
        );
        assert!(
            pressure(Kernel::Fir2dim) <= 12,
            "fir2dim: {}",
            pressure(Kernel::Fir2dim)
        );
        assert!(pressure(Kernel::Crc) <= 12, "crc: {}", pressure(Kernel::Crc));
    }

    #[test]
    fn ctx_density_is_realistic() {
        // Paper: roughly 10% of instructions are CTX instructions.
        for k in Kernel::ALL {
            let f = k.build(0, 8);
            let density = f.num_ctx_insts() as f64 / f.num_insts() as f64;
            assert!(
                (0.01..0.35).contains(&density),
                "{}: ctx density {density:.2}",
                k.name()
            );
        }
    }

    #[test]
    fn slots_do_not_collide() {
        // Two instances of the same kernel in different slots must not
        // disturb each other's output.
        let solo = {
            let w = crate::Workload::new(Kernel::Frag, 0, 3);
            let mut sim = Simulator::new(SimConfig::default());
            w.prepare(sim.memory_mut(), 5);
            sim.add_thread(w.func.clone());
            sim.run(StopWhen::Cycles(5_000_000));
            let (addr, len) = w.output_region();
            sim.memory().read_bytes(regbal_ir::MemSpace::Scratch, addr, len)
        };
        let duo = {
            let w0 = crate::Workload::new(Kernel::Frag, 0, 3);
            let w1 = crate::Workload::new(Kernel::Frag, 1, 3);
            let mut sim = Simulator::new(SimConfig::default());
            w0.prepare(sim.memory_mut(), 5);
            w1.prepare(sim.memory_mut(), 6);
            sim.add_thread(w0.func.clone());
            sim.add_thread(w1.func.clone());
            sim.run(StopWhen::Cycles(5_000_000));
            let (addr, len) = w0.output_region();
            sim.memory().read_bytes(regbal_ir::MemSpace::Scratch, addr, len)
        };
        assert_eq!(solo, duo);
    }
}
