//! IP fragmentation with checksum recomputation (CommBench `frag`) —
//! the paper's Figure 4 running example.
//!
//! Sums the header words in a read loop (each read is a CSB, plus a
//! voluntary `ctx` inserted by the programmer), folds the one's
//! complement checksum, and emits two fragment headers.

use super::Shell;
use regbal_ir::{Cond, Func, MemSpace, Operand};

pub(super) fn build(mut shell: Shell) -> Func {
    let pkt = shell.pkt;
    let out = shell.out;
    let b = &mut shell.b;

    let loop_head = b.new_block();
    let loop_body = b.new_block();
    let fold = b.new_block();

    // sum = 0; ptr = pkt + 12 (IP header); len = 5 words.
    let sum = b.imm(0);
    let ptr = b.add(pkt, Operand::Imm(12));
    let len = b.imm(5);
    b.jump(loop_head);

    // while (len) { sum += *ptr++; ctx; }   — the BB2/BB3 loop of Fig. 4.
    b.switch_to(loop_head);
    b.branch(Cond::Ne, len, Operand::Imm(0), loop_body, fold);

    b.switch_to(loop_body);
    let w = b.load(MemSpace::Sdram, ptr, 0);
    let lo = b.and(w, Operand::Imm(0xffff));
    let hi = b.shr(w, Operand::Imm(16));
    b.add_to(sum, sum, lo);
    b.add_to(sum, sum, hi);
    b.add_to(ptr, ptr, Operand::Imm(4));
    b.sub_to(len, len, Operand::Imm(1));
    b.ctx(); // voluntary fairness switch, as in the paper's example
    b.jump(loop_head);

    // Fold: sum = (sum & 0xFFFF) + (sum >> 16), twice; csum = ~sum.
    b.switch_to(fold);
    for _ in 0..2 {
        let lo = b.and(sum, Operand::Imm(0xffff));
        let hi = b.shr(sum, Operand::Imm(16));
        b.mov_to(sum, lo);
        b.add_to(sum, sum, hi);
    }
    let csum = b.un(regbal_ir::UnOp::Not, sum);
    let csum = b.and(csum, Operand::Imm(0xffff));

    // Build two fragment headers: original words patched with new
    // offsets and the recomputed checksum.
    let w0 = b.load(MemSpace::Sdram, pkt, 12);
    let frag_off = b.imm(0x2000); // more-fragments flag
    let h0 = b.or(w0, frag_off);
    b.store(MemSpace::Scratch, out, 16, h0);
    b.store(MemSpace::Scratch, out, 20, csum);
    let h1 = b.xor(h0, csum);
    b.store(MemSpace::Scratch, out, 24, h1);

    shell.absorb(csum);
    shell.absorb(h1);
    shell.finish()
}

#[cfg(test)]
mod tests {
    use super::super::Kernel;
    use regbal_analysis::ProgramInfo;

    #[test]
    fn frag_matches_figure4_shape() {
        let f = Kernel::Frag.build(0, 4);
        let info = ProgramInfo::compute(&f);
        // Loads + ctx in the loop, stores at the end: several NSRs.
        assert!(info.nsr.num_regions() >= 3, "{}", info.nsr.num_regions());
        assert!(info.pressure.regp_max <= 14);
        // sum/ptr/len live across the in-loop CSBs: boundary pressure.
        assert!(info.pressure.regp_csb_max >= 4);
    }
}
