//! Reed-Solomon-style table-driven parity encoder (CommBench `reed`
//! flavour): GF(256)-like mixing through an SRAM substitution table,
//! one table lookup per payload byte — heavily CSB-bound.

use super::Shell;
use crate::layout::Bases;
use regbal_ir::{Cond, Func, MemSpace, Operand};
use regbal_sim::Memory;

/// A 256-entry substitution table at `table + 0x100`.
pub(super) fn prepare_tables(mem: &mut Memory, b: Bases) {
    for i in 0..256u32 {
        // An affine permutation standing in for the GF antilog table.
        let v = (i * 179 + 41) & 0xff;
        mem.write_word(MemSpace::Sram, b.table + 0x100 + i * 4, v);
    }
}

pub(super) fn build(mut shell: Shell) -> Func {
    let pkt = shell.pkt;
    let table = shell.table;
    let b = &mut shell.b;

    let head = b.new_block();
    let body = b.new_block();
    let done = b.new_block();

    let parity = b.imm(0x5a);
    let i = b.imm(0);
    b.jump(head);

    b.switch_to(head);
    b.branch(Cond::Lt, i, Operand::Imm(4), body, done);

    b.switch_to(body);
    let off = b.shl(i, Operand::Imm(2));
    let addr = b.add(pkt, off);
    let w = b.load(MemSpace::Sdram, addr, 20);
    // Two byte lanes per word through the substitution table.
    let b0 = b.and(w, Operand::Imm(0xff));
    let mix0 = b.xor(b0, parity);
    let idx0 = b.shl(mix0, Operand::Imm(2));
    let slot0 = b.add(table, idx0);
    let s0 = b.load(MemSpace::Sram, slot0, 0x100);
    b.xor_to(parity, parity, s0);
    let b1 = b.shr(w, Operand::Imm(8));
    let b1 = b.and(b1, Operand::Imm(0xff));
    let mix1 = b.xor(b1, parity);
    let idx1 = b.shl(mix1, Operand::Imm(2));
    let slot1 = b.add(table, idx1);
    let s1 = b.load(MemSpace::Sram, slot1, 0x100);
    b.xor_to(parity, parity, s1);
    b.add_to(i, i, Operand::Imm(1));
    b.jump(head);

    b.switch_to(done);
    shell.absorb(parity);
    shell.finish()
}

#[cfg(test)]
mod tests {
    use super::super::Kernel;
    use regbal_analysis::ProgramInfo;

    #[test]
    fn reed_is_csb_dense() {
        let f = Kernel::Reed.build(0, 4);
        let info = ProgramInfo::compute(&f);
        let density = f.num_ctx_insts() as f64 / f.num_insts() as f64;
        assert!(density >= 0.08, "{density}");
        assert!(info.pressure.regp_csb_max >= 5);
    }
}
