//! CRC-style rolling checksum over the packet payload (CommBench
//! `crc` flavour): a shift-xor recurrence word by word. Lean and
//! memory-bound.

use super::{rotl, Shell};
use regbal_ir::{Cond, Func, MemSpace, Operand};

pub(super) fn build(mut shell: Shell) -> Func {
    let pkt = shell.pkt;
    let b = &mut shell.b;

    let head = b.new_block();
    let body = b.new_block();
    let done = b.new_block();

    let crc = b.imm(0xffff_ffffu32 as i64);
    let i = b.imm(0);
    b.jump(head);

    b.switch_to(head);
    b.branch(Cond::Lt, i, Operand::Imm(10), body, done);

    b.switch_to(body);
    let off = b.shl(i, Operand::Imm(2));
    let addr = b.add(pkt, off);
    let w = b.load(MemSpace::Sdram, addr, 16);
    // crc = rotl(crc, 5) ^ w ^ (crc >> 27) — a mixing recurrence with
    // the same data dependence structure as bytewise CRC.
    let r = rotl(b, crc, 5);
    let x = b.xor(r, w);
    let hi = b.shr(crc, Operand::Imm(27));
    b.mov_to(crc, x);
    b.xor_to(crc, crc, hi);
    b.add_to(i, i, Operand::Imm(1));
    b.jump(head);

    b.switch_to(done);
    let fin = b.un(regbal_ir::UnOp::Not, crc);
    shell.absorb(fin);
    shell.finish()
}

#[cfg(test)]
mod tests {
    use super::super::Kernel;
    use regbal_analysis::ProgramInfo;

    #[test]
    fn crc_is_lean_and_loopy() {
        let f = Kernel::Crc.build(0, 4);
        let info = ProgramInfo::compute(&f);
        assert!(info.pressure.regp_max <= 10, "{}", info.pressure.regp_max);
        assert!(f.num_blocks() >= 5);
    }
}
