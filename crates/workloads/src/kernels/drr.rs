//! Deficit-round-robin scheduler (CommBench `drr`).
//!
//! Classifies each packet into one of four queues, charges the queue's
//! deficit counter against the packet length, and either forwards or
//! defers the packet. Queue state lives in an SRAM table, giving a
//! read-modify-write CSB pattern.

use super::Shell;
use crate::layout::Bases;
use regbal_ir::{Cond, Func, MemSpace, Operand};
use regbal_sim::Memory;

/// Table layout: 4 queues × (deficit, quantum) word pairs.
pub(super) fn prepare_tables(mem: &mut Memory, b: Bases) {
    for q in 0..4u32 {
        mem.write_word(MemSpace::Sram, b.table + q * 8, 0); // deficit
        mem.write_word(MemSpace::Sram, b.table + q * 8 + 4, 500 + q * 250); // quantum
    }
}

pub(super) fn build(mut shell: Shell) -> Func {
    let pkt = shell.pkt;
    let table = shell.table;
    let b = &mut shell.b;

    let send = b.new_block();
    let defer = b.new_block();
    let join = b.new_block();

    // Classify: queue = (src-address byte) & 3; length from the header.
    let w3 = b.load(MemSpace::Sdram, pkt, 12);
    let q = b.and(w3, Operand::Imm(3));
    let w1 = b.load(MemSpace::Sdram, pkt, 16);
    let len = b.and(w1, Operand::Imm(0x7ff));

    // Load queue state.
    let qoff = b.shl(q, Operand::Imm(3));
    let entry = b.add(table, qoff);
    let deficit = b.load(MemSpace::Sram, entry, 0);
    let quantum = b.load(MemSpace::Sram, entry, 4);
    let budget = b.add(deficit, quantum);

    // if budget >= len: send (deficit = budget - len) else defer
    // (deficit = budget, capped).
    b.branch(Cond::GeU, budget, len, send, defer);

    b.switch_to(send);
    let left = b.sub(budget, len);
    b.store(MemSpace::Sram, entry, 0, left);
    // Forwarding a packet is observable output.
    let tag = b.or(len, Operand::Imm(0x8000_0000u32 as i64));
    shell.absorb(tag);
    shell.b.jump(join);

    let b = &mut shell.b;
    b.switch_to(defer);
    let capped = b.and(budget, Operand::Imm(0xffff));
    b.store(MemSpace::Sram, entry, 0, capped);
    shell.absorb(capped);
    shell.b.jump(join);

    shell.b.switch_to(join);
    let b = &mut shell.b;
    let probe = b.load(MemSpace::Sram, entry, 0);

    // Service-class accounting: each class updates statistics keeping a
    // different pair of the precomputed counters alive across its
    // store — the paper's Figure 9 pairwise-boundary-interference
    // pattern.
    let ga = b.xor(probe, len);
    let gb = b.shr(probe, Operand::Imm(3));
    let gc = b.shl(len, Operand::Imm(2));
    let class = b.and(len, Operand::Imm(3));
    let c0 = b.new_block();
    let c12 = b.new_block();
    let c1 = b.new_block();
    let c2 = b.new_block();
    let done = b.new_block();
    b.branch(Cond::Eq, class, Operand::Imm(0), c0, c12);

    b.switch_to(c0);
    b.store(MemSpace::Sram, entry, 32, probe); // ga, gb live across
    let s0 = b.add(ga, gb);
    shell.absorb(s0);
    shell.b.jump(done);

    let b = &mut shell.b;
    b.switch_to(c12);
    b.branch(Cond::Eq, class, Operand::Imm(1), c1, c2);

    b.switch_to(c1);
    b.store(MemSpace::Sram, entry, 36, probe); // ga, gc live across
    let s1 = b.add(ga, gc);
    shell.absorb(s1);
    shell.b.jump(done);

    let b = &mut shell.b;
    b.switch_to(c2);
    b.store(MemSpace::Sram, entry, 40, probe); // gb, gc live across
    let s2 = b.add(gb, gc);
    shell.absorb(s2);
    shell.b.jump(done);

    shell.b.switch_to(done);
    shell.finish()
}

#[cfg(test)]
mod tests {
    use super::super::Kernel;
    use regbal_analysis::ProgramInfo;

    #[test]
    fn drr_has_branchy_queue_logic() {
        let f = Kernel::Drr.build(0, 4);
        let info = ProgramInfo::compute(&f);
        assert!(f.num_blocks() >= 5);
        assert!(info.pressure.regp_max <= 14);
        assert!(f.num_ctx_insts() >= 6, "table RMW traffic");
    }
}
