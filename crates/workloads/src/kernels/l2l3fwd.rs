//! Layer-2/3 packet forwarding, receive and send sides (modelled on
//! the Intel IXP example code the paper uses as `L2l3fwd receive` /
//! `send`).
//!
//! The receive side validates the header, hashes the destination
//! address into a next-hop table and enqueues a descriptor; the send
//! side dequeues, patches TTL and checksum and emits the new header.
//! Both are lean, queue-centric kernels.

use super::Shell;
use crate::layout::Bases;
use regbal_ir::{Cond, Func, MemSpace, Operand};
use regbal_sim::Memory;

const NEXTHOP_OFF: i64 = 0x200; // 64-entry next-hop table
const RING_OFF: i64 = 0x600; // 16-entry descriptor ring

pub(super) fn prepare_tables(mem: &mut Memory, b: Bases) {
    for i in 0..64u32 {
        mem.write_word(
            MemSpace::Sram,
            b.table + NEXTHOP_OFF as u32 + i * 4,
            0x0a00_0000 | (i * 7 + 1),
        );
    }
    // Pre-filled descriptor ring for the send side.
    for i in 0..16u32 {
        mem.write_word(
            MemSpace::Sram,
            b.table + RING_OFF as u32 + i * 8,
            b.pkt + (i % 4) * 64,
        );
        mem.write_word(
            MemSpace::Sram,
            b.table + RING_OFF as u32 + i * 8 + 4,
            0x0a00_0040 | i,
        );
    }
}

pub(super) fn build_rx(mut shell: Shell) -> Func {
    let pkt = shell.pkt;
    let table = shell.table;
    let csum = shell.csum;
    let b = &mut shell.b;

    let valid = b.new_block();
    let drop = b.new_block();
    let join = b.new_block();

    // Ethertype/version check.
    let w0 = b.load(MemSpace::Sdram, pkt, 12);
    let ethertype = b.and(w0, Operand::Imm(0xffff));
    b.branch(Cond::Eq, ethertype, Operand::Imm(0x0008), valid, drop);

    b.switch_to(valid);
    // Hash the destination address into the next-hop table.
    let daddr = b.load(MemSpace::Sdram, pkt, 28);
    let h1 = b.shr(daddr, Operand::Imm(16));
    let h = b.xor(daddr, h1);
    let h = b.and(h, Operand::Imm(63));
    let hoff = b.shl(h, Operand::Imm(2));
    let slot = b.add(table, hoff);
    let nexthop = b.load(MemSpace::Sram, slot, NEXTHOP_OFF);
    // Protocol dispatch: each handler keeps a *different pair* of the
    // precomputed header fields alive across its descriptor store — the
    // pairwise-interference-at-different-CSBs pattern of the paper's
    // Figure 9, where the boundary graph needs one more color than any
    // single switch (MaxPR = RegPCSBmax + 1 until a live range is
    // split).
    let fa = b.xor(daddr, Operand::Imm(0x5a5a));
    let fb = b.shr(daddr, Operand::Imm(7));
    let fc = b.add(nexthop, Operand::Imm(3));
    let ring_idx = b.and(csum, Operand::Imm(15));
    let roff = b.shl(ring_idx, Operand::Imm(3));
    let entry = b.add(table, roff);
    let proto = b.and(daddr, Operand::Imm(1));
    let tcp = b.new_block();
    let not_tcp = b.new_block();
    let udp = b.new_block();
    let icmp = b.new_block();
    b.branch(Cond::Eq, proto, Operand::Imm(0), tcp, not_tcp);

    b.switch_to(tcp);
    b.store(MemSpace::Sram, entry, RING_OFF, pkt); // fa, fb live across
    let t0 = b.add(fa, fb);
    b.store(MemSpace::Sram, entry, RING_OFF + 4, t0);
    shell.absorb(t0);
    shell.b.jump(join);

    let b = &mut shell.b;
    b.switch_to(not_tcp);
    let kind = b.and(daddr, Operand::Imm(2));
    b.branch(Cond::Eq, kind, Operand::Imm(0), udp, icmp);

    b.switch_to(udp);
    b.store(MemSpace::Sram, entry, RING_OFF, pkt); // fa, fc live across
    let t1 = b.add(fa, fc);
    b.store(MemSpace::Sram, entry, RING_OFF + 4, t1);
    shell.absorb(t1);
    shell.b.jump(join);

    let b = &mut shell.b;
    b.switch_to(icmp);
    b.store(MemSpace::Sram, entry, RING_OFF, pkt); // fb, fc live across
    let t2 = b.add(fb, fc);
    b.store(MemSpace::Sram, entry, RING_OFF + 4, t2);
    shell.absorb(t2);
    shell.b.jump(join);

    let b = &mut shell.b;
    b.switch_to(drop);
    let bad = b.imm(0xdead);
    shell.absorb(bad);
    shell.b.jump(join);

    shell.b.switch_to(join);
    shell.finish()
}

pub(super) fn build_tx(mut shell: Shell) -> Func {
    let table = shell.table;
    let out = shell.out;
    let csum = shell.csum;

    // Two descriptors are transmitted per main-loop iteration (real
    // send loops batch the ring to amortise the dequeue cost).
    for batch in 0..2i64 {
        let b = &mut shell.b;
        let alive = b.new_block();
        let expired = b.new_block();
        let join = b.new_block();

        // Dequeue a descriptor.
        let mix = b.add(csum, Operand::Imm(batch));
        let ring_idx = b.and(mix, Operand::Imm(15));
        let roff = b.shl(ring_idx, Operand::Imm(3));
        let entry = b.add(table, roff);
        let paddr = b.load(MemSpace::Sram, entry, RING_OFF);
        let nexthop = b.load(MemSpace::Sram, entry, RING_OFF + 4);

        // Load the MAC/TTL words, decrement TTL.
        let w0 = b.load(MemSpace::Sdram, paddr, 12);
        let w2 = b.load(MemSpace::Sdram, paddr, 20);
        let ttl = b.shr(w2, Operand::Imm(16));
        let ttl = b.and(ttl, Operand::Imm(0xff));
        b.branch(Cond::GeU, ttl, Operand::Imm(2), alive, expired);

        b.switch_to(alive);
        let dec = b.sub(w2, Operand::Imm(0x1_0000));
        // Incremental checksum update (RFC 1624 flavour).
        let adj = b.add(dec, Operand::Imm(1));
        let mac = b.xor(w0, nexthop);
        b.store(MemSpace::Scratch, out, 16 + batch * 16, adj);
        b.store(MemSpace::Scratch, out, 20 + batch * 16, mac);
        shell.absorb(adj);
        shell.b.jump(join);

        let b = &mut shell.b;
        b.switch_to(expired);
        // TTL expired: emit an ICMP-ish note instead.
        let note = b.xor(nexthop, Operand::Imm(0x1111));
        b.store(MemSpace::Scratch, out, 24 + batch * 16, note);
        shell.absorb(note);
        shell.b.jump(join);

        shell.b.switch_to(join);
    }
    shell.finish()
}

#[cfg(test)]
mod tests {
    use super::super::Kernel;
    use regbal_analysis::ProgramInfo;

    #[test]
    fn forwarding_kernels_are_lean() {
        for k in [Kernel::L2l3fwdRx, Kernel::L2l3fwdTx] {
            let f = k.build(0, 4);
            let info = ProgramInfo::compute(&f);
            assert!(
                info.pressure.regp_max <= 14,
                "{}: {}",
                k.name(),
                info.pressure.regp_max
            );
            assert!(f.num_blocks() >= 4);
        }
    }
}
