//! WRAPS packet scheduling (Zhuang & Liu, HiPC 2002 — the paper's
//! reference [18]), receive and send sides.
//!
//! The receive side keeps per-flow credit state for ten flows resident
//! in registers while it charges the arriving packet and searches for
//! the most-credited flow — the highest register pressure in the suite,
//! which is why `wraps` is the thread that "can run much slower (due to
//! spills) if registers are not allocated properly" (paper §9,
//! scenario 3).

use super::{rotl, Shell};
use crate::layout::Bases;
use regbal_ir::{Cond, Func, MemSpace, Operand, VReg};
use regbal_sim::Memory;

const FLOWS: usize = 8;
const CREDIT_OFF: i64 = 0x300;

pub(super) fn prepare_tables(mem: &mut Memory, b: Bases) {
    for i in 0..FLOWS as u32 {
        mem.write_word(
            MemSpace::Sram,
            b.table + CREDIT_OFF as u32 + i * 4,
            100 * (i + 1),
        );
    }
}

pub(super) fn build_rx(mut shell: Shell) -> Func {
    let pkt = shell.pkt;
    let table = shell.table;
    let b = &mut shell.b;

    // Packet length and flow id first (so the credit vector below does
    // not sit across these switches).
    let w1 = b.load(MemSpace::Sdram, pkt, 16);
    let len = b.and(w1, Operand::Imm(0x7ff));
    let w3 = b.load(MemSpace::Sdram, pkt, 28);
    let flow = b.and(w3, Operand::Imm(7)); // flows 0..8 get traffic

    // Pull the whole credit vector into registers with one burst: ten
    // words live together — internally — through classification,
    // charging and the argmax scan.
    let credits: Vec<VReg> = b.load_burst(MemSpace::Sram, table, CREDIT_OFF, FLOWS);

    // Weighted replenish: credit[i] += weight(i) (weights as constants,
    // like a compiled-in WRAPS schedule), then charge the packet's flow.
    for (i, &c) in credits.iter().enumerate() {
        b.add_to(c, c, Operand::Imm(10 + 3 * i as i64));
    }
    // Charge: credit[flow] -= len, done branch-free over all flows:
    // mask = (i == flow) ? ~0 : 0; credit -= len & mask.
    for (i, &c) in credits.iter().enumerate() {
        let eq = b.xor(flow, Operand::Imm(i as i64));
        // eq == 0 iff this is the flow; build the all-ones mask.
        let nz = b.bin(regbal_ir::BinOp::SetLtU, eq, Operand::Imm(1)); // 1 if eq==0
        let mask = b.bin(regbal_ir::BinOp::Sub, nz, Operand::Imm(1)); // 0 if hit, ~0 if miss
        let inv = b.un(regbal_ir::UnOp::Not, mask); // ~0 if hit
        let charge = b.and(len, inv);
        b.sub_to(c, c, charge);
    }

    // Argmax scan: which flow may send next.
    let best = b.mov(credits[0]);
    let best_idx = b.imm(0);
    for (i, &c) in credits.iter().enumerate().skip(1) {
        let take = b.new_block();
        let skip = b.new_block();
        b.branch(Cond::GeU, c, best, take, skip);
        b.switch_to(take);
        b.mov_to(best, c);
        b.mov_to(best_idx, Operand::Imm(i as i64));
        b.jump(skip);
        b.switch_to(skip);
    }

    // Write back the whole credit vector in one burst.
    b.store_burst(MemSpace::Sram, table, CREDIT_OFF, &credits);
    let mix = rotl(b, best, 7);
    let tag = b.xor(mix, best_idx);
    shell.absorb(tag);
    shell.finish()
}

pub(super) fn build_tx(mut shell: Shell) -> Func {
    let table = shell.table;
    let out = shell.out;
    let b = &mut shell.b;

    // Load six ring slots in one burst, compute a weighted emission
    // order key for each (kept live together), emit the best two.
    let slots: Vec<VReg> = b.load_burst(MemSpace::Sram, table, CREDIT_OFF, 6);
    let keys: Vec<VReg> = slots
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let w = b.shl(s, Operand::Imm((i % 3) as i64));
            b.add(w, Operand::Imm(i as i64))
        })
        .collect();
    // Tournament for the two largest keys.
    let first = b.mov(keys[0]);
    let second = b.imm(0);
    for &k in &keys[1..] {
        let promote = b.new_block();
        let try_second = b.new_block();
        let next = b.new_block();
        b.branch(Cond::GeU, k, first, promote, try_second);
        b.switch_to(promote);
        b.mov_to(second, first);
        b.mov_to(first, k);
        b.jump(next);
        b.switch_to(try_second);
        let t2 = b.new_block();
        b.branch(Cond::GeU, k, second, t2, next);
        b.switch_to(t2);
        b.mov_to(second, k);
        b.jump(next);
        b.switch_to(next);
    }
    b.store(MemSpace::Scratch, out, 16, first);
    b.store(MemSpace::Scratch, out, 20, second);
    let mixed = b.xor(first, second);
    shell.absorb(mixed);
    shell.finish()
}

#[cfg(test)]
mod tests {
    use super::super::Kernel;
    use regbal_analysis::ProgramInfo;

    #[test]
    fn wraps_rx_pressure_is_highest_tier() {
        let f = Kernel::WrapsRx.build(0, 4);
        let info = ProgramInfo::compute(&f);
        assert!(info.pressure.regp_max >= 16, "{}", info.pressure.regp_max);
        // The credit vector arrives in one burst and is written back in
        // one burst, so it never crosses a switch: internal pressure
        // dominates boundary pressure.
        assert!(
            info.pressure.regp_csb_max + 8 <= info.pressure.regp_max,
            "{} vs {}",
            info.pressure.regp_csb_max,
            info.pressure.regp_max
        );
    }

    #[test]
    fn wraps_tx_moderate_pressure() {
        let f = Kernel::WrapsTx.build(0, 4);
        let info = ProgramInfo::compute(&f);
        assert!(info.pressure.regp_max >= 10);
    }
}
