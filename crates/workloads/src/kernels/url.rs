//! URL / signature matching over payload words (NetBench `url`
//! flavour): compares a sliding window of the payload against patterns
//! stored in SRAM, counting hits — branch-heavy with modest pressure.

use super::Shell;
use crate::layout::Bases;
use regbal_ir::{Cond, Func, MemSpace, Operand};
use regbal_sim::Memory;

/// Two 32-bit patterns at `table + 0x40`.
pub(super) fn prepare_tables(mem: &mut Memory, b: Bases) {
    mem.write_word(MemSpace::Sram, b.table + 0x40, u32::from_le_bytes(*b"http"));
    mem.write_word(MemSpace::Sram, b.table + 0x44, u32::from_le_bytes(*b"GET "));
}

pub(super) fn build(mut shell: Shell) -> Func {
    let pkt = shell.pkt;
    let table = shell.table;
    let b = &mut shell.b;

    let head = b.new_block();
    let body = b.new_block();
    let hit1 = b.new_block();
    let chk2 = b.new_block();
    let hit2 = b.new_block();
    let next = b.new_block();
    let done = b.new_block();

    let pat0 = b.load(MemSpace::Sram, table, 0x40);
    let pat1 = b.load(MemSpace::Sram, table, 0x44);
    let hits = b.imm(0);
    let i = b.imm(0);
    b.jump(head);

    b.switch_to(head);
    b.branch(Cond::Lt, i, Operand::Imm(8), body, done);

    b.switch_to(body);
    let off = b.shl(i, Operand::Imm(2));
    let addr = b.add(pkt, off);
    let w = b.load(MemSpace::Sdram, addr, 24);
    b.branch(Cond::Eq, w, pat0, hit1, chk2);

    b.switch_to(hit1);
    b.add_to(hits, hits, Operand::Imm(1));
    b.jump(next);

    b.switch_to(chk2);
    // Case-insensitive-ish second chance: mask the low bits.
    let folded = b.and(w, Operand::Imm(0xdfdf_dfdfu32 as i64));
    let pat1f = b.and(pat1, Operand::Imm(0xdfdf_dfdfu32 as i64));
    b.branch(Cond::Eq, folded, pat1f, hit2, next);

    b.switch_to(hit2);
    b.add_to(hits, hits, Operand::Imm(2));
    b.jump(next);

    b.switch_to(next);
    b.add_to(i, i, Operand::Imm(1));
    b.jump(head);

    b.switch_to(done);
    // Per-match-kind statistics: the three outcome handlers each keep a
    // different pair of summary fields alive across their stats store
    // (paper Fig. 9 pattern).
    let sa = b.xor(hits, pat0);
    let sb = b.add(hits, pat1);
    let sc = b.shl(hits, Operand::Imm(3));
    let kind = b.and(hits, Operand::Imm(3));
    let k0 = b.new_block();
    let k12 = b.new_block();
    let k1 = b.new_block();
    let k2 = b.new_block();
    let fin = b.new_block();
    b.branch(Cond::Eq, kind, Operand::Imm(0), k0, k12);

    b.switch_to(k0);
    b.store(MemSpace::Sram, table, 0x80, hits); // sa, sb live across
    let r0 = b.add(sa, sb);
    shell.absorb(r0);
    shell.b.jump(fin);

    let b = &mut shell.b;
    b.switch_to(k12);
    b.branch(Cond::Eq, kind, Operand::Imm(1), k1, k2);

    b.switch_to(k1);
    b.store(MemSpace::Sram, table, 0x84, hits); // sa, sc live across
    let r1 = b.add(sa, sc);
    shell.absorb(r1);
    shell.b.jump(fin);

    let b = &mut shell.b;
    b.switch_to(k2);
    b.store(MemSpace::Sram, table, 0x88, hits); // sb, sc live across
    let r2 = b.add(sb, sc);
    shell.absorb(r2);
    shell.b.jump(fin);

    shell.b.switch_to(fin);
    shell.absorb(hits);
    shell.finish()
}

#[cfg(test)]
mod tests {
    use super::super::Kernel;

    #[test]
    fn url_is_branch_heavy() {
        let f = Kernel::Url.build(0, 4);
        assert!(f.num_blocks() >= 8, "{}", f.num_blocks());
    }
}
