//! Adversarial stress-program generator for the degradation ladder.
//!
//! Where [`crate::Kernel`] reproduces *realistic* register-pressure
//! profiles, this module manufactures *hostile* ones: seeded random
//! CFGs whose whole register pool stays live from the preamble to a
//! final dump (a pairwise interference clique), with a tunable
//! context-switch density that forces the clique across CSBs — the
//! worst case for the paper's `MinPR` bound. At small register files
//! (`Nreg` down to 8) these programs are deliberately infeasible for
//! the balancing allocator, driving `regbal_core::allocate_ladder`
//! down its fallback rungs.
//!
//! Generated programs are always *valid* and *terminating*: branches
//! only jump forward, every register is defined before use, memory
//! traffic stays inside a per-slot scratch window, and the optional
//! outer loop counts down a fixed trip count. The same seed and
//! configuration always produce the same program, so failures are
//! reproducible from the seed alone.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use regbal_ir::{BinOp, BlockId, Cond, Func, FuncBuilder, MemSpace, Operand, UnOp, VReg};

/// Bytes of scratch memory reserved per stress slot: in-window traffic
/// uses offsets below `0x100`, the pool dump sits at `0x200..`, the
/// loop-counter witness at `0x1f0`.
pub const STRESS_SLOT_BYTES: u32 = 0x400;

/// Shape knobs for one adversarial program.
#[derive(Debug, Clone, Copy)]
pub struct StressConfig {
    /// Non-preamble body blocks (≥ 1).
    pub blocks: usize,
    /// Register-pool size: the pool forms one interference clique, so
    /// this is a floor on the thread's register demand.
    pub pool: usize,
    /// Maximum instructions per body block.
    pub block_len: usize,
    /// Probability of a `ctx` after each body instruction. At high
    /// densities every pool range crosses a CSB and the whole clique
    /// lands in the paper's `MinPR` bound.
    pub csb_density: f64,
    /// Wrap the body in a bounded counting loop (loop-carried liveness
    /// on top of the clique).
    pub outer_loop: bool,
}

impl StressConfig {
    /// Small programs saturated with context switches: nearly every
    /// instruction is followed by a `ctx`, so the pool clique is
    /// boundary-live. Two of these cannot share an 8-register file.
    pub fn csb_dense() -> StressConfig {
        StressConfig {
            blocks: 3,
            pool: 6,
            block_len: 6,
            csb_density: 0.9,
            outer_loop: false,
        }
    }

    /// A wide interference clique (10–12 simultaneously-live ranges)
    /// at a moderate switch density — pressure comes from the clique
    /// width, not the CSBs.
    pub fn clique() -> StressConfig {
        StressConfig {
            blocks: 4,
            pool: 12,
            block_len: 8,
            csb_density: 0.35,
            outer_loop: false,
        }
    }

    /// Looped mid-pressure programs: loop-carried pool liveness plus a
    /// realistic ~15 % switch density.
    pub fn mixed() -> StressConfig {
        StressConfig {
            blocks: 6,
            pool: 8,
            block_len: 8,
            csb_density: 0.15,
            outer_loop: true,
        }
    }
}

/// Builds one adversarial program. The same `seed` and `config` always
/// produce the same structure; `slot` only shifts the scratch window
/// (windows are [`STRESS_SLOT_BYTES`] apart, so threads on one PU never
/// touch each other's memory).
pub fn stress_program(seed: u64, slot: usize, config: StressConfig) -> Func {
    let mut rng = StdRng::seed_from_u64(seed);
    let slot_base = slot as u32 * STRESS_SLOT_BYTES;
    let mut b = FuncBuilder::new(format!("stress{slot}"));

    let body: Vec<BlockId> = (0..config.blocks.max(1)).map(|_| b.new_block()).collect();
    let dump = b.new_block();

    // Preamble: define the pool, the window base and the trip counter.
    // Every pool value is observable in the dump, so the pool is live
    // end to end — the interference clique the ladder has to survive.
    let base = b.imm(slot_base as i64);
    let pool: Vec<VReg> = (0..config.pool.max(2))
        .map(|i| b.imm(rng.random_range(0..1000) + i as i64))
        .collect();
    let trips = b.imm(3);
    b.jump(body[0]);

    for (bi, &block) in body.iter().enumerate() {
        b.switch_to(block);
        let n = rng.random_range(1..=config.block_len.max(1));
        for _ in 0..n {
            let pick = |rng: &mut StdRng| pool[rng.random_range(0..pool.len())];
            match rng.random_range(0..10u32) {
                0..=5 => {
                    // Three-address ops over the pool keep many ranges
                    // busy at once.
                    let op = BinOp::ALL[rng.random_range(0..BinOp::ALL.len())];
                    let dst = pick(&mut rng);
                    let lhs = pick(&mut rng);
                    let rhs = if rng.random_bool(0.5) {
                        Operand::from(pick(&mut rng))
                    } else {
                        Operand::Imm(rng.random_range(0..64))
                    };
                    b.bin_to(op, dst, lhs, rhs);
                }
                6 => {
                    let op = UnOp::ALL[rng.random_range(0..UnOp::ALL.len())];
                    let dst = pick(&mut rng);
                    let src = Operand::from(pick(&mut rng));
                    b.un_to(op, dst, src);
                }
                7 => {
                    let dst = pick(&mut rng);
                    b.load_to(dst, MemSpace::Scratch, base, rng.random_range(0..64) * 4);
                }
                8 => {
                    let src = pick(&mut rng);
                    b.store(MemSpace::Scratch, base, rng.random_range(0..64) * 4, src);
                }
                _ => b.nop(),
            }
            if rng.random_bool(config.csb_density) {
                b.ctx();
            }
        }
        // Forward-only control flow keeps the program terminating.
        let next = |rng: &mut StdRng| {
            if bi + 1 < body.len() {
                body[rng.random_range(bi + 1..body.len())]
            } else {
                dump
            }
        };
        if rng.random_bool(0.5) && bi + 1 < body.len() {
            let cond = Cond::ALL[rng.random_range(0..Cond::ALL.len())];
            let lhs = pool[rng.random_range(0..pool.len())];
            let taken = next(&mut rng);
            let fall = next(&mut rng);
            b.branch(cond, lhs, Operand::Imm(rng.random_range(0..32)), taken, fall);
        } else {
            b.jump(next(&mut rng));
        }
    }

    // Dump: every pool value becomes observable, so two executions are
    // comparable by memory snapshot. With an outer loop the dump is the
    // latch and the whole pool is loop-carried.
    b.switch_to(dump);
    for (i, &v) in pool.iter().enumerate() {
        b.store(MemSpace::Scratch, base, 0x200 + (i as i64) * 4, v);
    }
    b.iter_end();
    if config.outer_loop {
        let exit = b.new_block();
        b.sub_to(trips, trips, Operand::Imm(1));
        b.branch(Cond::Ne, trips, Operand::Imm(0), body[0], exit);
        b.switch_to(exit);
        b.store(MemSpace::Scratch, base, 0x1f0, trips);
        b.halt();
    } else {
        b.halt();
    }
    b.build().expect("generated stress program must be valid")
}

/// A bundle of `threads` adversarial programs for one PU, with
/// per-thread seeds derived from `seed` and disjoint scratch windows.
pub fn stress_bundle(seed: u64, threads: usize, config: StressConfig) -> Vec<Func> {
    (0..threads)
        .map(|t| stress_program(seed.wrapping_add(t as u64).wrapping_mul(0x9E37_79B9), t, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use regbal_sim::{SimConfig, Simulator, StopWhen};

    #[test]
    fn generation_is_deterministic_and_valid() {
        for config in [
            StressConfig::csb_dense(),
            StressConfig::clique(),
            StressConfig::mixed(),
        ] {
            let a = stress_program(7, 0, config);
            let b = stress_program(7, 0, config);
            assert_eq!(a, b, "same seed, same program");
            a.validate().unwrap();
            assert_ne!(a, stress_program(8, 0, config), "seed changes the program");
        }
    }

    #[test]
    fn csb_dense_programs_are_actually_dense() {
        let f = stress_program(11, 0, StressConfig::csb_dense());
        let density = f.num_ctx_insts() as f64 / f.num_insts() as f64;
        assert!(density > 0.3, "expected CSB-dense, got {density:.2}");
    }

    #[test]
    fn bundles_terminate_on_the_simulator() {
        let funcs = stress_bundle(23, 4, StressConfig::mixed());
        assert_eq!(funcs.len(), 4);
        let mut sim = Simulator::new(SimConfig::default());
        for f in &funcs {
            f.validate().unwrap();
            sim.add_thread(f.clone());
        }
        let report = sim.run(StopWhen::Cycles(1_000_000));
        assert!(report.threads.iter().all(|t| t.halted), "all threads halt");
    }
}
