//! Seeded stress-fuzz cases over the allocation ladder.
//!
//! One [`FuzzCase`] names an adversarial program bundle (a
//! [`regbal_workloads::stress`] class, a seed, a thread count) and a
//! register file, and [`FuzzCase::check`] pushes it through the same
//! contract the committed degradation corpus enforces: the pipeline
//! never panics, every success rewrites to validated physical code
//! confined to the file, degraded code is semantics-preserving
//! (memory snapshots equal the virtual-register reference) and
//! sanitizer-clean, and every simulated run terminates within a fixed
//! cycle budget.
//!
//! The `regbal fuzz` subcommand walks [`FuzzCase::from_index`] under a
//! time budget; any failing case is archived as its [`FuzzCase::line`]
//! in `tests/fuzz_regressions.txt`, which `tests/fuzz_regressions.rs`
//! replays on every CI run — a failure found once stays fixed.

use regbal_core::{allocate_ladder_with, EngineConfig, IterationBudget, LadderConfig, LadderStep};
use regbal_ir::{Func, MemSpace, Reg, Terminator};
use regbal_sim::{SanitizerConfig, SimConfig, Simulator, StopWhen};
use regbal_workloads::stress::{stress_bundle, StressConfig, STRESS_SLOT_BYTES};

/// Cycle budget for one simulated bundle; generously above what any
/// generated program needs, so hitting it means a hang.
const CYCLE_BUDGET: u64 = 2_000_000;

/// The deliberately tight iteration budget: hopeless rungs must fall
/// through on `IterationCapHit`, not grind.
const ITERATION_CAP: usize = 500;

/// The register files the index walk sweeps.
const NREG_SWEEP: [usize; 4] = [8, 12, 16, 24];

/// The stress corpus class of one case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzClass {
    /// Context-switch-saturated small programs.
    CsbDense,
    /// Wide interference cliques.
    Clique,
    /// Loop-carried mixed programs.
    Mixed,
}

impl FuzzClass {
    /// The stable spelling used in archive lines.
    pub fn name(self) -> &'static str {
        match self {
            FuzzClass::CsbDense => "csb-dense",
            FuzzClass::Clique => "clique",
            FuzzClass::Mixed => "mixed",
        }
    }

    fn config(self) -> StressConfig {
        match self {
            FuzzClass::CsbDense => StressConfig::csb_dense(),
            FuzzClass::Clique => StressConfig::clique(),
            FuzzClass::Mixed => StressConfig::mixed(),
        }
    }

    fn parse(name: &str) -> Result<FuzzClass, String> {
        match name {
            "csb-dense" => Ok(FuzzClass::CsbDense),
            "clique" => Ok(FuzzClass::Clique),
            "mixed" => Ok(FuzzClass::Mixed),
            other => Err(format!("unknown fuzz class `{other}`")),
        }
    }

    /// The next-simpler class the minimizer steps toward (mixed →
    /// clique → csb-dense → done): each step strips one generator
    /// feature, so a failure that survives is easier to read.
    fn simpler(self) -> Option<FuzzClass> {
        match self {
            FuzzClass::Mixed => Some(FuzzClass::Clique),
            FuzzClass::Clique => Some(FuzzClass::CsbDense),
            FuzzClass::CsbDense => None,
        }
    }
}

/// One reproducible fuzz case: a seeded stress bundle and the register
/// file it is allocated into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzCase {
    /// Generator seed for the bundle.
    pub seed: u64,
    /// Which stress corpus class to generate.
    pub class: FuzzClass,
    /// Threads in the bundle.
    pub threads: usize,
    /// Register-file size the ladder must survive.
    pub nreg: usize,
}

impl FuzzCase {
    /// The `i`-th case of the deterministic fuzz walk: the seed is a
    /// mixed function of the index, and class, thread count and
    /// register file cycle through their small domains so every
    /// combination recurs forever.
    pub fn from_index(i: u64) -> FuzzCase {
        let class = match i % 3 {
            0 => FuzzClass::CsbDense,
            1 => FuzzClass::Clique,
            _ => FuzzClass::Mixed,
        };
        FuzzCase {
            // splitmix64's mix rounds: consecutive indices land on
            // unrelated generator seeds.
            seed: {
                let mut x = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            },
            class,
            threads: 2 + (i / 3 % 2) as usize,
            nreg: NREG_SWEEP[(i / 6 % NREG_SWEEP.len() as u64) as usize],
        }
    }

    /// The archive line: `seed=<s> class=<c> threads=<t> nreg=<n>`.
    pub fn line(&self) -> String {
        format!(
            "seed={} class={} threads={} nreg={}",
            self.seed,
            self.class.name(),
            self.threads,
            self.nreg
        )
    }

    /// Parses an archive line written by [`FuzzCase::line`].
    ///
    /// # Errors
    ///
    /// A malformed pair, an unknown key or class, or a missing field.
    pub fn parse(line: &str) -> Result<FuzzCase, String> {
        let (mut seed, mut class, mut threads, mut nreg) = (None, None, None, None);
        for pair in line.split_whitespace() {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fuzz case `{pair}` is not key=value"))?;
            match key {
                "seed" => seed = Some(value.parse().map_err(|e| format!("seed: {e}"))?),
                "class" => class = Some(FuzzClass::parse(value)?),
                "threads" => threads = Some(value.parse().map_err(|e| format!("threads: {e}"))?),
                "nreg" => nreg = Some(value.parse().map_err(|e| format!("nreg: {e}"))?),
                other => return Err(format!("unknown fuzz key `{other}`")),
            }
        }
        Ok(FuzzCase {
            seed: seed.ok_or("fuzz case is missing `seed`")?,
            class: class.ok_or("fuzz case is missing `class`")?,
            threads: threads.ok_or("fuzz case is missing `threads`")?,
            nreg: nreg.ok_or("fuzz case is missing `nreg`")?,
        })
    }

    /// Generates the bundle and checks the full ladder contract.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated property:
    /// a panic anywhere in the pipeline, an unstructured failure, an
    /// unconfined or invalid rewrite, a semantics change, a sanitizer
    /// violation, or a simulated hang.
    pub fn check(&self) -> Result<(), String> {
        let funcs = stress_bundle(self.seed, self.threads, self.class.config());
        let config = LadderConfig {
            engine: EngineConfig {
                max_iterations: IterationBudget::Fixed(ITERATION_CAP),
                ..EngineConfig::default()
            },
            ..LadderConfig::default()
        };
        let result = std::panic::catch_unwind(|| allocate_ladder_with(&funcs, self.nreg, &config))
            .map_err(|_| "the allocation pipeline panicked".to_string())?;
        let alloc = match result {
            Ok(alloc) => alloc,
            Err(err) => {
                // Even total failure must be structured: a full trail
                // across every planned rung with the terminal error
                // attached.
                if err.degradations.len() != 4 {
                    return Err(format!("truncated degradation trail: {err}"));
                }
                if err.degradations[0].from != LadderStep::Balanced
                    || err.degradations[3].to != LadderStep::SpillAll
                {
                    return Err(format!("misordered degradation trail: {err}"));
                }
                return Ok(());
            }
        };
        if alloc.degraded_count() > 0 {
            if alloc.degradations[0].from != LadderStep::Balanced {
                return Err("the degradation trail does not start at `balanced`".into());
            }
            let last = alloc
                .degradations
                .last()
                .expect("degraded_count > 0 implies a trail");
            if last.to != alloc.step {
                return Err(format!(
                    "the trail ends at `{}` but the ladder settled on `{}`",
                    last.to.name(),
                    alloc.step.name()
                ));
            }
        }
        let physical = alloc
            .rewrite()
            .map_err(|e| format!("a settled ladder result failed to rewrite: {e}"))?;
        for f in &physical {
            f.validate()
                .map_err(|e| format!("`{}`: invalid rewrite: {e}", f.name))?;
            confined(f, self.nreg)?;
        }
        let (reference, _) = run_snapshot(&funcs, false)?;
        let (compiled, violations) = run_snapshot(&physical, true)?;
        if reference != compiled {
            return Err("the rewrite changed observable memory".into());
        }
        if violations != 0 {
            return Err(format!("{violations} clobber-class sanitizer violation(s)"));
        }
        Ok(())
    }

    /// Deterministically shrinks a failing case before it is archived:
    /// at each step the candidates are, in order, one fewer thread,
    /// the next-smaller register file of [`NREG_SWEEP`], and the
    /// next-simpler stress class; the first candidate whose
    /// [`FuzzCase::check`] still fails is accepted, and the walk
    /// repeats until no candidate reproduces the failure. A case that
    /// already passes is returned unchanged (there is nothing to
    /// shrink). The order is fixed and every probe is a deterministic
    /// replay, so minimization itself is reproducible.
    pub fn minimize(&self) -> FuzzCase {
        let mut cur = *self;
        if cur.check().is_ok() {
            return cur;
        }
        loop {
            let mut candidates: Vec<FuzzCase> = Vec::new();
            if cur.threads > 1 {
                candidates.push(FuzzCase {
                    threads: cur.threads - 1,
                    ..cur
                });
            }
            if let Some(&smaller) = NREG_SWEEP.iter().rev().find(|&&n| n < cur.nreg) {
                candidates.push(FuzzCase {
                    nreg: smaller,
                    ..cur
                });
            }
            if let Some(class) = cur.class.simpler() {
                candidates.push(FuzzCase { class, ..cur });
            }
            match candidates.into_iter().find(|c| c.check().is_err()) {
                Some(next) => cur = next,
                None => return cur,
            }
        }
    }
}

/// Every register in `f` must be physical and inside the file.
fn confined(f: &Func, nreg: usize) -> Result<(), String> {
    if f.max_vreg().is_some() {
        return Err(format!("`{}` still has virtual registers", f.name));
    }
    let check = |r: Reg| -> Result<(), String> {
        if let Reg::Phys(p) = r {
            if p.0 as usize >= nreg {
                return Err(format!(
                    "`{}` uses r{} outside a {nreg}-register file",
                    f.name, p.0
                ));
            }
        }
        Ok(())
    };
    for (_, _, inst) in f.iter_insts() {
        for r in inst.defs().chain(inst.uses()) {
            check(r)?;
        }
    }
    for b in &f.blocks {
        if let Terminator::Branch { lhs, rhs, .. } = &b.term {
            check(*lhs)?;
            if let regbal_ir::Operand::Reg(r) = rhs {
                check(*r)?;
            }
        }
    }
    Ok(())
}

/// Runs `funcs` as threads to completion and snapshots each thread's
/// scratch window; also counts clobber-class sanitizer violations when
/// instrumented.
fn run_snapshot(funcs: &[Func], sanitize: bool) -> Result<(Vec<Vec<u8>>, usize), String> {
    let mut sim = Simulator::new(SimConfig::default());
    if sanitize {
        sim.enable_sanitizer(SanitizerConfig::default());
    }
    for f in funcs {
        sim.add_thread(f.clone());
    }
    let report = sim.run(StopWhen::Cycles(CYCLE_BUDGET));
    if !report.threads.iter().all(|t| t.halted) {
        return Err(format!(
            "a thread failed to terminate within {CYCLE_BUDGET} cycles"
        ));
    }
    let snaps = (0..funcs.len())
        .map(|t| {
            sim.memory()
                .read_bytes(MemSpace::Scratch, t as u32 * STRESS_SLOT_BYTES, 0x240)
        })
        .collect();
    Ok((snaps, report.sanitizer_violations().count()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_index_walk_is_deterministic_and_covers_the_domains() {
        let a = FuzzCase::from_index(42);
        let b = FuzzCase::from_index(42);
        assert_eq!(a, b);
        let classes: std::collections::BTreeSet<&str> =
            (0..24).map(|i| FuzzCase::from_index(i).class.name()).collect();
        assert_eq!(classes.len(), 3, "all three classes appear");
        let files: std::collections::BTreeSet<usize> =
            (0..24).map(|i| FuzzCase::from_index(i).nreg).collect();
        assert_eq!(files.len(), NREG_SWEEP.len(), "the whole file sweep appears");
    }

    #[test]
    fn archive_lines_round_trip() {
        for i in [0, 7, 100] {
            let case = FuzzCase::from_index(i);
            assert_eq!(FuzzCase::parse(&case.line()).unwrap(), case);
        }
        assert!(FuzzCase::parse("seed=1 class=nope threads=2 nreg=8").is_err());
        assert!(FuzzCase::parse("seed=1 threads=2 nreg=8").is_err());
    }

    #[test]
    fn a_known_case_passes_its_own_contract() {
        FuzzCase::from_index(0).check().unwrap();
    }

    #[test]
    fn minimizing_a_passing_case_is_the_identity() {
        let case = FuzzCase::from_index(0);
        assert_eq!(case.minimize(), case, "nothing to shrink");
    }

    #[test]
    fn minimization_is_deterministic_and_only_steps_down() {
        // Whatever check() says about these cases, two minimization
        // runs must agree, and the result never grows on any axis.
        for i in [1, 5, 9] {
            let case = FuzzCase::from_index(i);
            let a = case.minimize();
            let b = case.minimize();
            assert_eq!(a, b);
            assert!(a.threads <= case.threads);
            assert!(a.nreg <= case.nreg);
            assert_eq!(a.seed, case.seed, "the seed is never touched");
        }
    }
}
