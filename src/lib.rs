//! Facade crate re-exporting the whole `regbal` workspace.
//!
//! `regbal` reproduces *Balancing Register Allocation Across Threads for
//! a Multithreaded Network Processor* (Zhuang & Pande, PLDI 2004): a
//! compiler that balances a shared register file across the threads of a
//! network-processor micro-engine, keeping values that are dead at every
//! context switch in registers *shared* by all threads.
//!
//! The sub-crates are re-exported here under short names:
//!
//! * [`ir`] — the IXP-style RISC IR (instructions, CFG, parser, printer);
//! * [`analysis`] — liveness, register pressure, context-switch
//!   boundaries, non-switch regions;
//! * [`igraph`] — the GIG/BIG/IIG interference graphs and coloring;
//! * [`core`] — the allocators: bound estimation, intra-/inter-thread
//!   allocation, the SRA sweep, the Chaitin spilling baseline, physical
//!   rewriting and verification;
//! * [`sim`] — a cycle-level micro-engine simulator;
//! * [`workloads`] — the 11 benchmark kernels used by the paper's
//!   evaluation (CommBench/NetBench-style).
//!
//! See the repository `README.md` for a walkthrough, and `examples/` for
//! runnable end-to-end programs.

#![forbid(unsafe_code)]

pub mod fuzz;

pub use regbal_analysis as analysis;
pub use regbal_core as core;
pub use regbal_igraph as igraph;
pub use regbal_ir as ir;
pub use regbal_sim as sim;
pub use regbal_workloads as workloads;
