//! Bring your own microcode: parse textual assembly, inspect the
//! analyses the paper builds on (CSBs, non-switch regions, bounds), run
//! the symmetric allocator for four threads, and print the physical
//! code.
//!
//! Run with `cargo run --example custom_asm`.

use regbal_analysis::ProgramInfo;
use regbal_core::{allocate_sra, estimate_bounds};
use regbal_ir::parse_func;

const SOURCE: &str = "
; A token-bucket policer: refill, charge, verdict. The bucket level is
; loaded and stored around the charge computation.
func policer {
bb0:
    v0 = mov 4096          ; state base
    v1 = mov 0             ; packet counter
    jump bb1
bb1:
    v2 = load sram[v0+0]   ; bucket level   (CSB)
    v3 = load sram[v0+4]   ; refill rate    (CSB)
    v4 = add v2, v3        ; refill
    v5 = and v1, 63
    v6 = mul v5, 7
    v7 = and v6, 1023      ; packet cost
    bltu v4, v7, bb2, bb3
bb2:
    store sram[v0+8], v4   ; defer: stash level (CSB)
    jump bb4
bb3:
    v8 = sub v4, v7        ; charge
    store sram[v0+0], v8   ; write back      (CSB)
    jump bb4
bb4:
    v1 = add v1, 1
    iter_end
    bltu v1, 32, bb1, bb5
bb5:
    store scratch[v0+0], v1
    halt
}";

fn main() {
    let func = parse_func(SOURCE).expect("valid assembly");
    let info = ProgramInfo::compute(&func);

    println!("== analysis ==");
    println!("instructions:        {}", func.num_insts());
    println!("context switches:    {}", info.csbs.len());
    println!("non-switch regions:  {}", info.nsr.num_regions());
    println!(
        "boundary registers:  {:?}",
        info.boundary.iter().map(|v| format!("v{v}")).collect::<Vec<_>>()
    );
    let est = estimate_bounds(&info);
    println!(
        "bounds: MinPR={} MinR={} MaxPR={} MaxR={}",
        est.bounds.min_pr, est.bounds.min_r, est.bounds.max_pr, est.bounds.max_r
    );

    println!("\n== symmetric allocation, 4 threads, 16 registers ==");
    let sra = allocate_sra(&func, 4, 16).expect("feasible");
    println!(
        "PR = {} per thread, SR = {} shared, {} move(s); demand {} of 16",
        sra.pr(),
        sra.sr(),
        sra.moves(),
        sra.total_registers()
    );

    let multi = sra.to_multi();
    let funcs = vec![func.clone(), func.clone(), func.clone(), func];
    let physical = multi.rewrite_funcs(&funcs);
    println!("\n== thread 0, physical code ==");
    println!("{}", physical[0]);
}
