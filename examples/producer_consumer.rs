//! Threads that actually communicate: a producer fills a ring buffer in
//! scratch memory, a consumer drains it. The paper assumes threads are
//! mostly independent but notes its solution "still works under such
//! circumstances" (§2, item 4) — this example demonstrates exactly
//! that: the two programs are allocated together, share registers, and
//! the hand-shake through memory stays correct.
//!
//! Run with `cargo run --example producer_consumer`.

use regbal_core::allocate_threads;
use regbal_ir::{parse_func, MemSpace};
use regbal_sim::{SimConfig, Simulator, StopWhen};

const RING: u32 = 0x100; // 8-slot ring of words
const HEAD: u32 = 0x180; // producer write index
const TAIL: u32 = 0x184; // consumer read index
const OUT: u32 = 0x200; // consumer's running sum

fn producer() -> regbal_ir::Func {
    parse_func(
        "
func producer {
bb0:
    v0 = mov 256           ; ring base
    v1 = mov 16            ; items to produce
    v2 = mov 1             ; next value
    jump wait
wait:
    v3 = load scratch[v0+128]   ; head
    v4 = load scratch[v0+132]   ; tail
    v5 = sub v3, v4
    bgeu v5, 8, wait, push      ; ring full -> spin
push:
    v6 = and v3, 7
    v7 = shl v6, 2
    v8 = add v0, v7
    store scratch[v8+0], v2     ; ring[head % 8] = value
    v3 = add v3, 1
    store scratch[v0+128], v3   ; head++
    v2 = add v2, v2             ; next value doubles
    v2 = add v2, 1
    v1 = sub v1, 1
    iter_end
    bne v1, 0, wait, done
done:
    halt
}",
    )
    .unwrap()
}

fn consumer() -> regbal_ir::Func {
    parse_func(
        "
func consumer {
bb0:
    v0 = mov 256           ; ring base
    v1 = mov 16            ; items to consume
    v2 = mov 0             ; running sum
    jump wait
wait:
    v3 = load scratch[v0+128]   ; head
    v4 = load scratch[v0+132]   ; tail
    beq v3, v4, wait, pop       ; ring empty -> spin
pop:
    v5 = and v4, 7
    v6 = shl v5, 2
    v7 = add v0, v6
    v8 = load scratch[v7+0]     ; value = ring[tail % 8]
    v2 = add v2, v8
    v4 = add v4, 1
    store scratch[v0+132], v4   ; tail++
    store scratch[v0+256], v2   ; publish the sum
    v1 = sub v1, 1
    iter_end
    bne v1, 0, wait, done
done:
    halt
}",
    )
    .unwrap()
}

fn main() {
    let funcs = vec![producer(), consumer()];
    let alloc = allocate_threads(&funcs, 16).expect("two threads fit in 16 registers");
    println!("producer: PR={} SR={}", alloc.threads[0].pr(), alloc.threads[0].sr());
    println!("consumer: PR={} SR={}", alloc.threads[1].pr(), alloc.threads[1].sr());
    println!("demand {} of 16 registers\n", alloc.total_registers());
    let physical = alloc.rewrite_funcs(&funcs);

    let run = |fs: &[regbal_ir::Func]| {
        let mut sim = Simulator::new(SimConfig::default());
        for f in fs {
            sim.add_thread(f.clone());
        }
        let report = sim.run(StopWhen::Cycles(1_000_000));
        assert!(report.threads.iter().all(|t| t.halted), "deadlock?");
        (
            sim.memory().read_word(MemSpace::Scratch, OUT),
            sim.memory().read_word(MemSpace::Scratch, HEAD),
            sim.memory().read_word(MemSpace::Scratch, TAIL),
        )
    };

    let (ref_sum, head, tail) = run(&funcs);
    let (phys_sum, _, _) = run(&physical);
    println!("produced/consumed: {head}/{tail} items");
    println!("reference sum: {ref_sum}");
    println!("allocated sum: {phys_sum}");
    assert_eq!(head, 16);
    assert_eq!(tail, 16);
    assert_eq!(ref_sum, phys_sum, "communication survives shared registers");
    println!("\nthe hand-shake through memory is untouched by register sharing:");
    println!("shared registers only ever hold values that are dead at every switch.");
    let _ = RING;
}
