//! Explore the §5 register-requirement bounds across the benchmark
//! suite, and how the zero-cost reduction frontier compares to a
//! standalone allocation.
//!
//! Run with `cargo run --release --example bounds_explorer`.

use regbal_analysis::ProgramInfo;
use regbal_core::{estimate_bounds, zero_cost_frontier};
use regbal_workloads::{Kernel, Workload};

fn main() {
    println!(
        "{:12} {:>6} {:>5} {:>6} {:>5} | {:>9} {:>9}",
        "kernel", "MinPR", "MinR", "MaxPR", "MaxR", "free PR", "free SR"
    );
    println!("{}", "-".repeat(66));
    for k in Kernel::ALL {
        let w = Workload::new(k, 0, 32);
        let info = ProgramInfo::compute(&w.func);
        let b = estimate_bounds(&info).bounds;
        // How far can the allocator shrink this thread without
        // inserting a single move instruction?
        let frontier = zero_cost_frontier(&w.func);
        println!(
            "{:12} {:>6} {:>5} {:>6} {:>5} | {:>9} {:>9}",
            k.name(),
            b.min_pr,
            b.min_r,
            b.max_pr,
            b.max_r,
            frontier.pr(),
            frontier.sr(),
        );
    }
    println!();
    println!("MinPR = RegPCSBmax (values live across one switch; Lemma 1)");
    println!("MinR  = RegPmax    (co-live values anywhere)");
    println!("Max*  = demand without any live-range splitting (Fig. 7)");
    println!("free  = the zero-move frontier the Figure 14 evaluation reports");
}
