//! A realistic asymmetric scenario: an IP-forwarding pipeline sharing a
//! micro-engine with two MD5 digest threads (the paper's scenario 2).
//!
//! Compares the fixed-partition spilling baseline against the balancing
//! allocator, measuring steady-state cycles per packet in the
//! cycle-accurate simulator.
//!
//! Run with `cargo run --release --example pipeline_ara`.

use regbal_core::chaitin::{self, ChaitinConfig};
use regbal_core::allocate_threads;
use regbal_ir::Func;
use regbal_sim::{SimConfig, Simulator, StopWhen};
use regbal_workloads::{Kernel, Workload};

const NREG: usize = 48; // scaled register file: 12 per thread baseline
const WINDOW: u64 = 300_000;

fn main() {
    let kernels = [Kernel::L2l3fwdRx, Kernel::L2l3fwdTx, Kernel::Md5, Kernel::Md5];
    let workloads: Vec<Workload> = kernels
        .iter()
        .enumerate()
        .map(|(slot, &k)| Workload::new(k, slot, 1 << 20))
        .collect();
    let funcs: Vec<Func> = workloads.iter().map(|w| w.func.clone()).collect();

    // Baseline: every thread gets a fixed NREG/4 bank and spills.
    let spill: Vec<Func> = funcs
        .iter()
        .enumerate()
        .map(|(t, f)| {
            let cfg = ChaitinConfig {
                k: NREG / 4,
                phys_base: (t * (NREG / 4)) as u32,
                spill_space: regbal_ir::MemSpace::Sram,
                spill_base: 0x7_0000 + (t as i64) * 0x1000,
            };
            chaitin::allocate(f, &cfg).expect("baseline allocates").func
        })
        .collect();

    // Ours: balance the whole file across the four threads.
    let alloc = allocate_threads(&funcs, NREG).expect("balancing fits");
    let share = alloc.rewrite_funcs(&funcs);

    println!("thread allocation (balancing allocator):");
    for (i, t) in alloc.threads.iter().enumerate() {
        println!(
            "  {:12} PR={:2} SR={:2} moves={}",
            kernels[i].name(),
            t.pr(),
            t.sr(),
            t.moves()
        );
    }

    let measure = |fs: &[Func]| -> Vec<f64> {
        let mut sim = Simulator::new(SimConfig::default());
        for w in &workloads {
            w.prepare(sim.memory_mut(), 1234 + w.slot as u64);
        }
        for f in fs {
            sim.add_thread(f.clone());
        }
        let report = sim.run(StopWhen::Cycles(WINDOW));
        assert!(report.violations.is_empty());
        report.threads.iter().map(|t| t.cycles_per_iteration).collect()
    };

    let cpi_spill = measure(&spill);
    let cpi_share = measure(&share);
    println!("\nsteady-state cycles per packet ({}k-cycle window):", WINDOW / 1000);
    println!("  {:12} {:>10} {:>10} {:>9}", "thread", "spilling", "sharing", "speedup");
    for i in 0..4 {
        println!(
            "  {:12} {:>10.0} {:>10.0} {:>8.1}%",
            kernels[i].name(),
            cpi_spill[i],
            cpi_share[i],
            100.0 * (1.0 - cpi_share[i] / cpi_spill[i])
        );
    }
    println!("\nthe digest threads speed up because their spill traffic is gone;");
    println!("the forwarding threads pay only a slight scheduling cost.");
}
