//! Quickstart: the paper's Figure 3 example, end to end.
//!
//! Two threads share one register file. Thread 1 keeps `a` live across
//! a context switch (it needs a *private* register) while `b` and `c`
//! live only between switches (they can use *shared* registers); thread
//! 2's `d` is likewise internal. The allocator finds the partition, the
//! rewriter produces physical code, and the simulator proves the result
//! is identical to the virtual-register reference.
//!
//! Run with `cargo run --example quickstart`.

use regbal_core::allocate_threads;
use regbal_ir::parse_func;
use regbal_sim::{SimConfig, Simulator, StopWhen};

fn main() {
    // Thread 1 of paper Figure 3 (slightly concretised so it executes):
    // `a` crosses the ctx; `b`/`c` only live afterwards.
    let t1 = parse_func(
        "
func thread1 {
bb0:
    v0 = mov 17            ; a =
    ctx
    beq v0, 0, bb1, bb2
bb1:
    v1 = mov 2             ; b =
    v3 = add v0, v1        ; = a + b
    v2 = mov 3             ; c =
    jump bb3
bb2:
    v2 = mov 4             ; c =
    v3 = add v0, v2        ; = a + c
    v1 = mov 5             ; b =
    jump bb3
bb3:
    v4 = add v1, v2        ; = b + c
    v5 = mov 64
    store scratch[v5+0], v4
    store scratch[v5+4], v3
    halt
}",
    )
    .expect("valid assembly");

    // Thread 2 of Figure 3: `d` lives only between switches.
    let t2 = parse_func(
        "
func thread2 {
bb0:
    ctx
    v0 = mov 40            ; d =
    v1 = add v0, 2         ; = d + 2
    v2 = mov 128
    store scratch[v2+0], v1
    halt
}",
    )
    .expect("valid assembly");

    let funcs = vec![t1, t2];
    let nreg = 6;
    let alloc = allocate_threads(&funcs, nreg).expect("6 registers are plenty here");

    println!("== allocation ==");
    for (i, t) in alloc.threads.iter().enumerate() {
        println!(
            "thread {i}: PR = {} private, SR = {} shared, {} move(s) inserted",
            t.pr(),
            t.sr(),
            t.moves()
        );
    }
    println!(
        "total demand: sum(PR) + max(SR) = {} of {nreg} registers",
        alloc.total_registers()
    );

    let layout = alloc.layout();
    for i in 0..funcs.len() {
        println!("thread {i} private bank: r{:?}", layout.private_range(i));
    }
    println!("shared bank:           r{:?}", layout.shared_range());

    println!("\n== thread 1, physical code ==");
    let physical = alloc.rewrite_funcs(&funcs);
    println!("{}", physical[0]);

    // Prove the allocation correct by running both builds.
    let run = |fs: &[regbal_ir::Func]| {
        let mut sim = Simulator::new(SimConfig::default());
        for f in fs {
            sim.add_thread(f.clone());
        }
        sim.run(StopWhen::Cycles(100_000));
        (
            sim.memory().read_word(regbal_ir::MemSpace::Scratch, 64),
            sim.memory().read_word(regbal_ir::MemSpace::Scratch, 68),
            sim.memory().read_word(regbal_ir::MemSpace::Scratch, 128),
        )
    };
    let reference = run(&funcs);
    let allocated = run(&physical);
    println!("\n== simulation ==");
    println!("reference build outputs: {reference:?}");
    println!("allocated build outputs: {allocated:?}");
    assert_eq!(reference, allocated, "allocation must preserve semantics");
    println!("identical — the shared-register allocation is safe.");
}
