//! The paper's Figure 2(a) in miniature: a chip with three processing
//! units in a packet pipeline — receive, process, transmit — passing
//! packets through SRAM rings, with every PU running **allocated**
//! (physical-register) code produced by the balancing allocator.
//!
//! Run with `cargo run --release --example chip_pipeline`.

use regbal_core::allocate_threads;
use regbal_ir::{parse_func, Func, MemSpace};
use regbal_sim::{Chip, SimConfig};

const PKTS: u32 = 12;

/// Ring descriptor: [head, tail] words at `base`, slots at `base+64`.
fn ring_src(name: &str, body: &str) -> Func {
    parse_func(&format!("func {name} {{\n{body}\n}}")).expect("valid stage")
}

fn rx() -> Func {
    // Synthesise packets (ids 1..=PKTS) into ring A (base 1024).
    ring_src(
        "rx",
        "
bb0:
    v0 = mov 1024
    v1 = mov 12
    v2 = mov 1
    jump push
push:
    v3 = load sram[v0+0]
    v4 = load sram[v0+4]
    v5 = sub v3, v4
    bgeu v5, 32, push, ok      ; ring full -> spin
ok:
    v6 = and v3, 31
    v7 = add v0, v6
    store sram[v7+64], v2
    v3 = add v3, 4
    store sram[v0+0], v3
    v2 = add v2, 1
    v1 = sub v1, 1
    iter_end
    bne v1, 0, push, done
done:
    halt",
    )
}

fn proc_stage() -> Func {
    // Pop from ring A (1024), square-ish transform, push to ring B (2048).
    ring_src(
        "process",
        "
bb0:
    v0 = mov 1024
    v1 = mov 2048
    v2 = mov 12
    jump wait
wait:
    v3 = load sram[v0+0]
    v4 = load sram[v0+4]
    beq v3, v4, wait, pop
pop:
    v5 = and v4, 31
    v6 = add v0, v5
    v7 = load sram[v6+64]
    v4 = add v4, 4
    store sram[v0+4], v4
    v8 = mul v7, v7
    v9 = add v8, 7
    store sram[v1+64], v9      ; single-slot handoff for simplicity
    v10 = load sram[v1+0]
    v10 = add v10, 1
    store sram[v1+0], v10      ; bump sequence number
    v2 = sub v2, 1
    iter_end
    bne v2, 0, wait, done
done:
    halt",
    )
}

fn tx() -> Func {
    // Watch ring B's sequence number; accumulate transformed packets.
    ring_src(
        "tx",
        "
bb0:
    v0 = mov 2048
    v1 = mov 12
    v2 = mov 0
    v3 = mov 0                  ; last sequence seen
    jump wait
wait:
    v4 = load sram[v0+0]
    beq v4, v3, wait, take
take:
    v3 = mov v4
    v5 = load sram[v0+64]
    v2 = add v2, v5
    store scratch[v0+0], v2
    v1 = sub v1, 1
    iter_end
    bne v1, 0, wait, done
done:
    halt",
    )
}

fn main() {
    let stages = [rx(), proc_stage(), tx()];

    // Allocate each PU's single thread independently (each PU has its
    // own register file; the paper's optimisation is per-PU).
    let mut physical = Vec::new();
    for stage in &stages {
        let alloc = allocate_threads(std::slice::from_ref(stage), 16).expect("fits");
        println!(
            "{:8} PR={} SR={} of 16 registers",
            stage.name,
            alloc.threads[0].pr(),
            alloc.threads[0].sr()
        );
        physical.push(alloc.rewrite_funcs(std::slice::from_ref(stage)).remove(0));
    }

    let run = |funcs: &[Func]| {
        let mut chip = Chip::new(SimConfig::default(), 3);
        for (pu, f) in funcs.iter().enumerate() {
            chip.add_thread(pu, f.clone());
        }
        // Ring A head/tail start equal (1024 = empty).
        chip.memory_mut().write_word(MemSpace::Sram, 1024, 1024);
        chip.memory_mut().write_word(MemSpace::Sram, 1028, 1024);
        let reports = chip.run(5_000_000, 16);
        let done = reports.iter().all(|r| r.threads.iter().all(|t| t.halted));
        (chip.memory().read_word(MemSpace::Scratch, 2048), done)
    };

    let (ref_sum, ref_done) = run(&stages);
    let (phys_sum, phys_done) = run(&physical);
    assert!(ref_done && phys_done, "pipeline must drain");
    println!("\npackets through the 3-PU pipeline: {PKTS}");
    println!("reference checksum: {ref_sum}");
    println!("allocated checksum: {phys_sum}");
    assert_eq!(ref_sum, phys_sum);
    println!("the allocated pipeline is byte-identical to the reference.");
}
