//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the `criterion 0.8` API this workspace
//! uses: [`Criterion`], benchmark groups with `sample_size`,
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Each benchmark is calibrated to a per-sample iteration
//! count, timed over `sample_size` samples, and reported as the median
//! ns/iteration on stdout. When the `CRITERION_JSON` environment
//! variable names a file, one JSON line per benchmark is appended to it
//! so results can be tracked across runs (see `BENCH_ENGINE.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget one benchmark's measurement phase aims for.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);
/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 12;

/// One measured benchmark.
#[derive(Debug, Clone)]
struct BenchResult {
    name: String,
    median_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// The benchmark driver; collects and reports results.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Runs one benchmark with the default sample size.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name.into(), DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named group; benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    fn run<F>(&mut self, name: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration: grow the per-sample iteration count until one
        // sample costs at least TARGET_SAMPLE_TIME (or one iteration
        // already exceeds it).
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut sample_ns: Vec<f64> = (0..sample_size.max(1))
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = sample_ns[sample_ns.len() / 2];

        println!(
            "bench {name:<48} {median_ns:>14.1} ns/iter  ({} samples x {iters} iters)",
            sample_ns.len()
        );
        self.results.push(BenchResult {
            name,
            median_ns,
            samples: sample_ns.len(),
            iters_per_sample: iters,
        });
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) else {
            eprintln!("criterion shim: cannot open {path}");
            return;
        };
        for r in &self.results {
            // Hand-rolled JSON: names are bench identifiers (no quoting
            // hazards beyond backslash/quote, escaped here anyway).
            let escaped: String = r
                .name
                .chars()
                .flat_map(|c| match c {
                    '"' | '\\' => vec!['\\', c],
                    _ => vec![c],
                })
                .collect();
            let _ = writeln!(
                file,
                "{{\"bench\": \"{escaped}\", \"median_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
                r.median_ns, r.samples, r.iters_per_sample
            );
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        self.criterion.run(full, self.sample_size, f);
        self
    }

    /// Ends the group (results were reported as they ran).
    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].median_ns >= 0.0);
        assert_eq!(c.results[0].name, "noop");
    }

    #[test]
    fn groups_prefix_names_and_honour_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| black_box(2) * 2));
        g.finish();
        assert_eq!(c.results[0].name, "grp/inner");
        assert_eq!(c.results[0].samples, 3);
    }

    #[test]
    fn macros_compile_into_runnable_groups() {
        fn one(c: &mut Criterion) {
            c.bench_function("m", |b| b.iter(|| ()));
        }
        criterion_group!(benches, one);
        benches();
    }
}
