//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the `proptest 1` API this workspace uses:
//! the [`proptest!`] test macro with `arg in strategy` bindings, the
//! [`any`] strategy, [`ProptestConfig::with_cases`], and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! stream seeded by the test name and case index, so failures are
//! reproducible; there is no shrinking — the failing case's inputs are
//! printed instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;

/// Per-test configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert*` assertion.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic case-generation stream.
pub mod test_runner {
    /// SplitMix64 generator feeding value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream unique to (`test_seed`, `case`).
        pub fn deterministic(test_seed: u64, case: u32) -> Self {
            TestRng {
                state: test_seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// The next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// FNV-1a hash of a test name, used to seed its case stream.
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: std::fmt::Debug + Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u64, u32, u16, u8, usize, i64, i32, i16, i8);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property tests. Supports the subset of the real macro's
/// grammar this workspace uses: an optional leading
/// `#![proptest_config(...)]` and `fn name(pat in strategy, ...)` items
/// with arbitrary outer attributes (`#[test]`, doc comments, ...).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::name_seed(stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(seed, case);
                let mut inputs = ::std::string::String::new();
                $(
                    let value = $crate::Strategy::generate(&($strat), &mut rng);
                    let _ = ::std::fmt::Write::write_fmt(
                        &mut inputs,
                        format_args!("{:?} ", value),
                    );
                    let $arg = value;
                )+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> $crate::TestCaseResult { $body ::std::result::Result::Ok(()) },
                    ),
                );
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        panic!(
                            "proptest `{}` failed at case {case} (inputs: {}): {}",
                            stringify!($name), inputs.trim_end(), e,
                        );
                    }
                    ::std::result::Result::Err(payload) => {
                        eprintln!(
                            "proptest `{}` panicked at case {case} (inputs: {})",
                            stringify!($name), inputs.trim_end(),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Generated values differ across cases (sanity of the stream).
        #[test]
        fn generates_varied_values(x in any::<u64>(), y in any::<u64>()) {
            prop_assert_ne!(x, y);
        }

        #[test]
        fn assertions_pass(x in any::<u32>()) {
            prop_assert!(u64::from(x) <= u64::from(u32::MAX));
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        /// The no-config arm compiles and runs with defaults.
        #[test]
        fn default_config_works(b in any::<bool>()) {
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic(1, 2);
        let mut b = crate::test_runner::TestRng::deterministic(1, 2);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic(1, 3);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in any::<u64>()) {
                prop_assert!(false, "x was {}", x);
            }
        }
        always_fails();
    }
}
