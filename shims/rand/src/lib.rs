//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand 0.10` API this workspace uses
//! (`StdRng`, [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! convenience methods) on top of a SplitMix64 stream. Deterministic
//! per seed; not cryptographically secure; drop-in only for the
//! surface listed in `shims/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seedable random-number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt {
    /// The next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (half-open or inclusive). The
    /// element type is inferred from the call site, as in the real
    /// crate.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// The generator types.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// A deterministic SplitMix64 generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Element types [`RngExt::random_range`] can produce.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi)` (`hi` exclusive).
    fn sample_between<R: RngExt + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]` (`hi` inclusive).
    fn sample_between_inclusive<R: RngExt + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `span` (`span >= 1`), rejection-sampled to avoid
/// modulo bias.
fn uniform_below<R: RngExt + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngExt + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
            fn sample_between_inclusive<R: RngExt + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample from empty range");
                // The i128 widening makes `hi - lo + 1` exact for every
                // supported type; the full [MIN, MAX] span of a 64-bit
                // type (span 2^64) is the one unrepresentable case.
                let span = hi as i128 - lo as i128 + 1;
                assert!(span <= u64::MAX as i128, "range spans the whole domain");
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(usize, u64, u32, u16, u8, i64, i32);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between_inclusive(lo, hi, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let z = rng.random_range(0..1u32);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.random_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "got {heads}/2000 heads");
    }

    #[test]
    fn fill_covers_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5..5usize);
    }
}
